// Package server implements mpcd, the long-lived join-aggregate query
// service over the simulated MPC engine. Datasets are registered once and
// held in memory; queries then reference them by name and run concurrently,
// each on its own execution scope (per-query worker runtime and
// context) — the engine-side guarantee that makes a multi-tenant service
// possible without process-global runtime state.
//
// The service owns the cross-cutting concerns the library leaves to its
// caller:
//
//   - Admission control: a per-tenant weighted-fair queue bounds the total
//     OS parallelism of concurrently executing queries, with bounded
//     per-tenant wait queues and load shedding beyond them (HTTP 429). A
//     flooding tenant cannot starve a quiet one.
//   - Result caching and coalescing: the engine's determinism (same
//     dataset versions + canonical options + semiring ⇒ bit-identical
//     rows, Stats and trace) makes results perfectly cacheable; a bounded
//     LRU serves repeats without executing, and concurrent identical
//     queries coalesce onto one shared execution.
//   - Snapshot reads: the dataset registry is copy-on-write, so a
//     registration never blocks in-flight queries and every query pins the
//     dataset versions it started on.
//   - End-to-end cancellation: per-request deadlines and client
//     disconnects flow through context into the engine, which stops at the
//     next simulated round barrier; cancelled work never produces a
//     partial response. A coalesced waiter's cancellation leaves the
//     shared execution running for the remaining waiters.
//   - Observability: /metrics exposes in-flight/queued/completed/cancelled
//     counts, per-engine/per-tenant breakdowns, cache hit/miss/eviction
//     counters, and the cumulative metered MPC cost of everything the
//     service has executed; an optional structured access log emits one
//     record per query.
//
// HTTP surface:
//
//	GET  /healthz      — liveness; 503 while draining
//	GET  /metrics      — MetricsSnapshot JSON
//	POST /v1/datasets  — register a dataset (rows inline or generated)
//	GET  /v1/datasets  — list registered dataset names
//	POST /v1/query     — run a join-aggregate query
//	POST /v2/query     — options object, faults, cache control, tenants
//	POST /v2/plan      — dry-run the cost-based planner, no execution
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/planner"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/serve"
	"mpcjoin/internal/spmv"
	"mpcjoin/internal/transport"
)

// Config sizes the service.
type Config struct {
	// Capacity is the admission capacity in worker units — the total OS
	// parallelism concurrently executing queries may hold. Defaults to
	// GOMAXPROCS.
	Capacity int64
	// MaxQueue bounds the admission wait queue; requests beyond it are
	// shed with HTTP 429. Defaults to 64.
	MaxQueue int
	// TenantQueue bounds each tenant's share of the wait queue; beyond it
	// that tenant's requests are shed with 429 while other tenants still
	// queue. 0 means MaxQueue (only the global bound applies).
	TenantQueue int
	// TenantWeights sets per-tenant fair-dequeue shares; tenants not
	// listed get weight 1.
	TenantWeights map[string]int64
	// CacheEntries bounds the result cache (entry count). 0 means the
	// default (256); negative disables result caching and request
	// coalescing entirely.
	CacheEntries int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (mpcd's
	// -pprof flag). Off by default: the profiling surface is for
	// operators, not for the query API's clients.
	EnablePprof bool
	// Transport, when non-nil, runs every query's exchange barriers on
	// the given backend (mpcd cluster mode: transport.TCP over the
	// -peers list). nil keeps the in-process path. Results and metered
	// Stats are identical either way; each query execution connects its
	// own wire, so concurrent queries multiplex over the peer tier
	// independently.
	Transport transport.Transport
	// AccessLog, when non-nil, receives one AccessEntry per query
	// request (mpcd's -log-format json). Called synchronously at the end
	// of each request; keep it fast.
	AccessLog func(AccessEntry)
	// BaseContext is the root context of shared (coalesced) executions,
	// which must outlive any single waiter. Defaults to
	// context.Background(); the daemon passes its process context so a
	// forced drain also cancels shared executions.
	BaseContext context.Context
}

// Server is the query service. Construct with New; serve via Handler.
type Server struct {
	cfg      Config
	reg      *Registry
	fair     *serve.FairQueue
	cache    *serve.Cache[*QueryResponse]
	plans    *serve.Cache[*planner.Plan]
	flight   serve.Flight[*QueryResponse]
	met      *Metrics
	mux      *http.ServeMux
	baseCtx  context.Context
	cacheOn  bool
	draining atomic.Bool
}

// defaultCacheEntries bounds the result cache when Config.CacheEntries
// is zero.
const defaultCacheEntries = 256

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.Capacity <= 0 {
		cfg.Capacity = int64(runtime.GOMAXPROCS(0))
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = defaultCacheEntries
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	entries := cfg.CacheEntries
	if entries < 1 {
		entries = 1 // cache disabled; keep the struct non-nil for stats
	}
	s := &Server{
		cfg: cfg,
		reg: NewRegistry(),
		fair: serve.NewFairQueue(serve.FairConfig{
			Capacity:    cfg.Capacity,
			MaxQueue:    cfg.MaxQueue,
			TenantQueue: cfg.TenantQueue,
			Weights:     cfg.TenantWeights,
		}),
		cache:   serve.NewCache[*QueryResponse](entries),
		plans:   serve.NewCache[*planner.Plan](entries),
		met:     NewMetrics(),
		baseCtx: cfg.BaseContext,
		cacheOn: cfg.CacheEntries > 0,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /v1/query", s.handleQueryV1)
	s.mux.HandleFunc("POST /v2/query", s.handleQueryV2)
	s.mux.HandleFunc("POST /v2/plan", s.handlePlanV2)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the dataset store (tests and embedding callers).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the counters (tests and embedding callers).
func (s *Server) Metrics() *Metrics { return s.met }

// CacheStats exposes the result-cache counters (tests and embedding
// callers).
func (s *Server) CacheStats() serve.CacheStats { return s.cache.Stats() }

// SetDraining flips drain mode: while draining, /healthz reports 503 and
// new queries and registrations are shed with 503, while in-flight queries
// run to completion (callers pair this with http.Server.Shutdown, which
// waits for them).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

// clientError marks an error as caused by the request itself (bad schema,
// dangling dataset reference, invalid semiring): the client must change
// the request, so the handler answers 4xx and counts failed_client.
// Anything not wrapped — an engine failure on a well-formed request — is
// an internal error: 5xx and failed_internal.
type clientError struct{ err error }

func (e *clientError) Error() string { return e.err.Error() }
func (e *clientError) Unwrap() error { return e.err }

func isClientError(err error) bool {
	var ce *clientError
	return errors.As(err, &ce)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.met.Snapshot()
	snap.Datasets = s.reg.Len()
	snap.DatasetVersion = s.reg.Version()
	snap.AdmitInUse = s.fair.InUse()
	snap.AdmitCap = s.fair.Capacity()
	snap.AdmitQueued = s.fair.Queued()
	snap.Draining = s.Draining()
	snap.Cache = s.cache.Stats()
	queuedBy := s.fair.QueuedByTenant()
	asInt64 := make(map[string]int64, len(queuedBy))
	for tenant, n := range queuedBy {
		asInt64[tenant] = int64(n)
	}
	snap.TenantQueued = sortedCounts(asInt64)
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.WritePrometheus(w, snap)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// DatasetResponse acknowledges a registration.
type DatasetResponse struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	// Version is the registry version this registration published;
	// queries report the version they ran against, so clients can tell
	// whether a result reflects their latest data.
	Version uint64 `json:"version,omitempty"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	req, err := DecodeDatasetRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var rows []relation.Row[int64]
	if req.Generate != nil {
		rows = GenerateRows(req.Arity, req.Generate.N, req.Generate.Dom, req.Generate.Seed)
	} else {
		rows = make([]relation.Row[int64], len(req.Rows))
		buf := make([]relation.Value, len(req.Rows)*req.Arity)
		for i, row := range req.Rows {
			vals := buf[i*req.Arity : (i+1)*req.Arity : (i+1)*req.Arity]
			for j := range vals {
				vals[j] = relation.Value(row[j+1])
			}
			rows[i] = relation.Row[int64]{Vals: vals, W: row[0]}
		}
	}
	if err := s.reg.Put(req.Name, req.Arity, rows); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Version-carrying cache keys already make stale hits impossible;
	// invalidation reclaims the memory the replaced results occupy. Cached
	// plans key the same way and drop with the same registration.
	s.cache.InvalidateTags(req.Name)
	s.plans.InvalidateTags(req.Name)
	ds, _ := s.reg.Get(req.Name)
	writeJSON(w, http.StatusOK, DatasetResponse{Name: req.Name, Rows: len(rows), Version: ds.Version})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"datasets": s.reg.Names()})
}

// QueryResponse is the body of a successful POST /v1/query or /v2/query.
type QueryResponse struct {
	// Attrs is the output schema, in group_by order.
	Attrs []string `json:"attrs"`
	// Rows are output tuples as [annotation, v1, v2, ...], sorted by
	// values. The annotation is a number for the int64-carrier semirings
	// and a boolean for "bools".
	Rows [][]any `json:"rows"`
	// Stats is the metered MPC cost of this query.
	Stats mpc.Stats `json:"stats"`
	// Class is the query's structural class; Engine the algorithm that ran.
	Class  string `json:"class"`
	Engine string `json:"engine"`
	// Plan is the planner's explanation — class, ranked candidates with
	// predicted loads, chosen engine and why, predicted vs. measured
	// load — present only when the request asked for it
	// ("options":{"explain":true}, v2 only). Explaining never changes rows
	// or stats.
	Plan *planner.Plan `json:"plan,omitempty"`
	// WallNS is the query's wall-clock execution time in nanoseconds
	// (excluding queueing); for a cache hit, the time to serve the hit.
	WallNS int64 `json:"wall_ns"`
	// DatasetVersion is the registry version the query's snapshot pinned
	// (v2 responses only; v1 predates versioning and keeps its shape).
	DatasetVersion uint64 `json:"dataset_version,omitempty"`
	// Cached is true when the result was served from the result cache
	// without executing; Coalesced when it was served by joining another
	// request's in-flight execution. Both only ever set on v2.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Rounds is the per-round load timeline, present only when the request
	// set "trace": true.
	Rounds []mpc.RoundTrace `json:"rounds,omitempty"`
	// Faults is the fault-injection accounting, present only when the
	// request carried a faults block (v2). Rows and Stats of a fault-
	// injected query whose faults were absorbed by the retry budget are
	// identical to a fault-free run.
	Faults *mpc.FaultReport `json:"faults,omitempty"`
	// Iterations meters each driver-loop iteration of a graph query
	// (present only with a graph block); Converged reports whether the
	// driver reached its fixpoint within the iteration budget.
	Iterations []spmv.IterStat `json:"iterations,omitempty"`
	Converged  *bool           `json:"converged,omitempty"`

	// queueNS is the execution's admission-queue wait, for the access log.
	queueNS int64
	// plan is the plan the execution observed (always, explain or not) —
	// the source of the Class/Engine labels; nil for graph queries.
	plan *planner.Plan
}

// handleQueryV1 is the deprecated flat-shape query endpoint: a thin
// adapter over the same execution path as /v2/query, kept byte-for-byte
// backward compatible (flat request knobs, {"error": "..."} responses,
// no caching or coalescing) and stamped with deprecation headers pointing
// at the successor.
func (s *Server) handleQueryV1(w http.ResponseWriter, r *http.Request) {
	markDeprecated(w)
	s.serveQuery(w, r, apiV1)
}

// handleQueryV2 is the current query endpoint: options object, faults
// block, cache control, tenant admission, typed error envelope.
func (s *Server) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, apiV2)
}

func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, v apiVersion) {
	reqStart := time.Now()
	entry := AccessEntry{Path: r.URL.Path, Tenant: DefaultTenant}
	defer func() {
		if s.cfg.AccessLog != nil {
			entry.WallNS = time.Since(reqStart).Nanoseconds()
			s.cfg.AccessLog(entry)
		}
	}()
	// fail writes the versioned error response and records the outcome
	// for the access log.
	fail := func(status int, cause, format string, args ...any) {
		entry.Status, entry.Cause = status, cause
		v.writeError(w, status, cause, format, args...)
	}

	if s.Draining() {
		s.met.QueryRejected()
		fail(http.StatusServiceUnavailable, "drain", "draining")
		return
	}
	tenant, err := tenantFromRequest(r)
	if err != nil {
		fail(http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	entry.Tenant = tenant

	decode := DecodeQueryRequest
	if v == apiV2 {
		decode = DecodeQueryRequestV2
	}
	req, err := decode(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		fail(http.StatusBadRequest, "bad_request", "%v", err)
		return
	}

	// Cache mode: v1 predates the cache and pins per-request execution
	// semantics, so it always runs off.
	mode := req.Cache
	if mode == "default" {
		mode = cacheDefault
	}
	if v == apiV1 || !s.cacheOn {
		mode = cacheOff
	}

	// Resolve relation → dataset bindings against ONE registry snapshot,
	// before spending any admission budget: the query pins the dataset
	// versions it starts on, a concurrent registration publishes a new
	// snapshot without touching this one, and a dangling reference is a
	// client error, not load.
	view := s.reg.View()
	q, insts, bf := bindQuery(req, view)
	if bf != nil {
		fail(bf.status, bf.cause, "%s", bf.msg)
		return
	}
	entry.DatasetVersion = view.Version()

	o := core.Options{
		Servers:   req.Servers,
		Seed:      req.Seed,
		Workers:   req.Workers,
		Transport: s.cfg.Transport,
	}
	switch req.Strategy {
	case "yannakakis":
		o.Strategy = core.StrategyYannakakis
	case "tree":
		o.Strategy = core.StrategyTree
	}
	if req.Faults != nil {
		o.Faults = mpc.NewFaultPlane(req.Faults.Spec(req.Seed))
	}
	if req.Graph != nil {
		// Graph queries bypass the join-aggregate planner: the graph block
		// itself names the driver.
		entry.Engine = "spmv-" + req.Graph.Kind
	} else {
		// Class-only validation and a provisional engine label; the
		// cost-based resolution below refines the label for auto queries.
		cpl, err := core.PlanQuery(q, o.Strategy)
		if err != nil {
			fail(http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		entry.Engine = cpl.Engine
	}

	// Deadline: derived before planning and admission so it covers the
	// planner pre-pass and queue wait as well as execution — a query must
	// not sit in the admission queue past its own deadline and then still
	// run.
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	defer cancel()

	// Resolve the auto plan before the cache is keyed: the result key must
	// carry the engine that will actually run, so an auto-planned query
	// whose planner decision flips with the data can never cross-serve a
	// result computed by a different engine.
	var resolved *planner.Plan
	if req.Graph == nil && mode != cacheOff && o.Strategy == core.StrategyAuto {
		resolved, err = s.resolveQueryPlan(ctx, req, q, insts, o)
		if err != nil {
			s.failPlan(ctx, fail, err)
			return
		}
		o.Engine = resolved.Chosen
		entry.Engine = resolved.Chosen
	}

	// respond renders a success from resp without mutating it: resp may
	// be shared with the cache and with coalesced waiters, so per-request
	// decoration happens on a shallow copy.
	respond := func(resp *QueryResponse, hit, coalesced bool) {
		out := *resp
		out.Cached, out.Coalesced = hit, coalesced
		if v == apiV2 {
			out.DatasetVersion = view.Version()
		} else {
			out.DatasetVersion = 0
		}
		if hit {
			out.WallNS = time.Since(reqStart).Nanoseconds()
		}
		entry.Status = http.StatusOK
		entry.CacheHit, entry.Coalesced = hit, coalesced
		entry.Engine = out.Engine
		if !hit {
			entry.QueueNS = resp.queueNS
		}
		if req.Graph == nil {
			s.met.PlanEngine(out.Engine)
		}
		s.met.TenantServed(tenant)
		writeJSON(w, http.StatusOK, &out)
	}

	var key string
	if mode != cacheOff {
		key = cacheKey(req, insts, o)
	}
	if mode == cacheDefault {
		if resp, ok := s.cache.Get(key); ok {
			s.met.QueryCacheServed()
			respond(resp, true, false)
			return
		}
	}

	// exec is the one shared execution: admission, engine run, metrics,
	// cache write. In coalescing mode it runs under a context derived
	// from the server's base context — NOT from any single waiter — so a
	// waiter's deadline or disconnect never cancels the result the other
	// waiters are waiting for.
	exec := func(execCtx context.Context) (*QueryResponse, error) {
		resp, err := s.execAdmitted(execCtx, tenant, req, q, insts, o)
		if err == nil {
			if req.Explain && resolved != nil {
				// The ranked plan came from the pre-resolution above; the
				// execution itself ran with the engine forced, so its own
				// observer holds only the forced stub.
				rich := *resolved
				rich.MeasuredLoad = resp.Stats.MaxLoad
				resp.Plan = &rich
			}
			if mode != cacheOff {
				s.cache.Put(key, cacheTags(req), resp)
			}
		}
		return resp, err
	}

	var resp *QueryResponse
	outcome := serve.Led
	if mode == cacheDefault {
		resp, outcome, err = s.flight.Do(ctx, s.baseCtx, key, exec)
	} else {
		resp, err = exec(ctx)
	}
	if err != nil {
		if outcome == serve.AbandonedShared || outcome == serve.AbandonedLast {
			// This waiter's own context ended; the shared execution either
			// runs on for the others (its metrics are recorded there) or,
			// if this was the last waiter, is being cancelled and records
			// the cancellation itself.
			if outcome == serve.AbandonedShared {
				s.met.QueryCancelled(s.cancelCause(ctx))
			}
			if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
				fail(http.StatusGatewayTimeout, "deadline", "deadline exceeded")
			} else {
				fail(http.StatusServiceUnavailable, "drain", "cancelled (%s)", s.disconnectCause())
			}
			return
		}
		switch {
		case errors.Is(err, serve.ErrTenantQueueFull):
			s.met.TenantShed(tenant)
			fail(http.StatusTooManyRequests, "queue_full", "tenant %q admission quota exhausted", tenant)
		case errors.Is(err, ErrQueueFull):
			s.met.TenantShed(tenant)
			fail(http.StatusTooManyRequests, "queue_full", "admission queue full")
		case errors.Is(err, context.DeadlineExceeded):
			fail(http.StatusGatewayTimeout, "deadline", "deadline exceeded")
		case errors.Is(err, context.Canceled):
			// The client may be gone; the write is best-effort.
			fail(http.StatusServiceUnavailable, "drain", "cancelled (%s)", s.disconnectCause())
		case errors.Is(err, mpc.ErrFaultBudgetExceeded):
			fail(http.StatusInternalServerError, "fault_budget", "%v", err)
		case isClientError(err):
			fail(http.StatusBadRequest, "bad_request", "%v", err)
		default:
			fail(http.StatusInternalServerError, "internal", "internal error: %v", err)
		}
		return
	}
	if outcome == serve.Joined {
		s.met.QueryCoalesced()
	}
	respond(resp, false, outcome == serve.Joined)
}

// execAdmitted runs one admitted execution end to end — queue, engine,
// metrics — and is called exactly once per execution (directly for
// uncached modes, as the shared flight body otherwise), so every metric
// it records counts executions, not waiters.
func (s *Server) execAdmitted(ctx context.Context, tenant string, req *QueryRequest, q *hypergraph.Query, insts map[string]*Dataset, o core.Options) (*QueryResponse, error) {
	// Admission: hold weight proportional to the OS parallelism this query
	// runs with for the duration of its execution. The wait respects the
	// execution's context, so an abandoned execution frees its queue slot.
	// workers: 0 (the default) runs serially, which still occupies one OS
	// worker — clamp to 1 so default queries cannot bypass the capacity.
	weight := int64(req.Workers)
	if req.Workers < 0 {
		weight = int64(runtime.GOMAXPROCS(0))
	}
	if weight < 1 {
		weight = 1
	}

	s.met.QueryQueued()
	queueStart := time.Now()
	weight, err := s.fair.Acquire(ctx, tenant, weight)
	queueNS := time.Since(queueStart).Nanoseconds()
	s.met.QueryDequeued()
	if err != nil {
		switch {
		case errors.Is(err, serve.ErrTenantQueueFull), errors.Is(err, ErrQueueFull):
			s.met.QueryRejected()
		case errors.Is(err, context.DeadlineExceeded):
			s.met.QueryCancelled("deadline")
		default:
			s.met.QueryCancelled(s.cancelCause(ctx))
		}
		return nil, err
	}
	defer s.fair.Release(weight)

	s.met.QueryStarted()
	defer s.met.QueryFinished()

	if req.Trace {
		o.Tracer = mpc.NewTracer()
	}
	start := time.Now()
	var resp *QueryResponse
	if req.Graph != nil {
		resp, err = s.executeGraph(ctx, req, insts, o)
	} else {
		resp, err = s.execute(ctx, req, q, insts, o)
	}
	wall := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.met.QueryCancelled("deadline")
		case errors.Is(err, context.Canceled):
			s.met.QueryCancelled(s.cancelCause(ctx))
		case errors.Is(err, mpc.ErrFaultBudgetExceeded):
			s.met.QueryFailedInternal()
			s.met.FaultBudgetExhausted()
			if o.Faults != nil {
				s.met.FaultsObserved(o.Faults.Report())
			}
		case isClientError(err):
			s.met.QueryFailedClient()
		default:
			s.met.QueryFailedInternal()
		}
		return nil, err
	}
	engine, class := "", ""
	if req.Graph != nil {
		engine, class = "spmv-"+req.Graph.Kind, "graph"
	} else if resp.plan != nil {
		// The plan observer names the engine that actually ran — the
		// planner's choice for auto queries, the forced engine otherwise.
		engine, class = resp.plan.Chosen, resp.plan.Class
	}
	s.met.QueryCompleted(engine, resp.Stats)
	resp.Class = class
	resp.Engine = engine
	if req.Explain {
		resp.Plan = resp.plan
	}
	resp.WallNS = wall.Nanoseconds()
	resp.queueNS = queueNS
	if o.Tracer != nil {
		resp.Rounds = o.Tracer.Rounds()
	}
	if o.Faults != nil {
		rep := o.Faults.Report()
		resp.Faults = &rep
		s.met.FaultsObserved(rep)
	}
	return resp, nil
}

// cancelCause labels a context.Canceled outcome from ctx: a shared
// execution cancelled because its last waiter's deadline expired counts
// as "deadline"; otherwise drain mode or a client disconnect decides.
func (s *Server) cancelCause(ctx context.Context) string {
	if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
		return "deadline"
	}
	return s.disconnectCause()
}

// disconnectCause labels a context.Canceled outcome: during a drain the
// daemon (not the client) cancels in-flight work, so the cancellation is
// recorded as "drain" rather than a client disconnect.
func (s *Server) disconnectCause() string {
	if s.Draining() {
		return "drain"
	}
	return "client"
}

// execute materializes the query's instance from the registry (aliasing
// the stored rows; the engine's unowned placement copies them into shards)
// and runs it under the requested semiring.
func (s *Server) execute(ctx context.Context, req *QueryRequest, q *hypergraph.Query, insts map[string]*Dataset, o core.Options) (*QueryResponse, error) {
	if req.Semiring == "bools" {
		inst := make(db.Instance[bool], len(insts))
		for name, ds := range insts {
			rel := newRelation[bool](q, name)
			rel.Rows = make([]relation.Row[bool], len(ds.Rows))
			for i, row := range ds.Rows {
				rel.Rows[i] = relation.Row[bool]{Vals: row.Vals, W: row.W != 0}
			}
			inst[name] = rel
		}
		return runTyped[bool](ctx, semiring.BoolOrAnd{}, q, inst, o, func(w bool) any { return w })
	}

	inst := make(db.Instance[int64], len(insts))
	for name, ds := range insts {
		rel := newRelation[int64](q, name)
		rel.Rows = ds.Rows
		inst[name] = rel
	}
	annot := func(w int64) any { return w }
	switch req.Semiring {
	case "", "ints":
		return runTyped[int64](ctx, semiring.IntSumProd{}, q, inst, o, annot)
	case "minplus":
		return runTyped[int64](ctx, semiring.MinPlus{}, q, inst, o, annot)
	case "maxplus":
		return runTyped[int64](ctx, semiring.MaxPlus{}, q, inst, o, annot)
	case "maxmin":
		return runTyped[int64](ctx, semiring.MaxMin{}, q, inst, o, annot)
	}
	return nil, &clientError{fmt.Errorf("unknown semiring %q", req.Semiring)}
}

// executeGraph runs the request's graph block: one iterated driver (BFS,
// SSSP or PageRank) over the single bound edge relation, on the same
// execution scope (servers, seed, workers, tracer, fault plane,
// transport) a join-aggregate query would get. Rows come back as
// [value, vertex] — hop level, distance or rank first, mirroring the
// [annotation, values...] shape of join results.
func (s *Server) executeGraph(ctx context.Context, req *QueryRequest, insts map[string]*Dataset, o core.Options) (resp *QueryResponse, err error) {
	g := req.Graph
	ds := insts[req.Relations[0].Name]
	p := o.Servers
	if p == 0 {
		p = 16
	}

	ex, release, err := o.NewScope(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer mpc.Recover(&err)

	resp = &QueryResponse{Attrs: []string{"vertex"}, Rows: [][]any{}}
	var conv bool
	switch g.Kind {
	case "bfs":
		edges := make([]spmv.Edge[bool], len(ds.Rows))
		for i, row := range ds.Rows {
			edges[i] = spmv.Edge[bool]{Src: row.Vals[0], Dst: row.Vals[1], W: true}
		}
		gr := spmv.BFS(ex, edges, p, o.Seed, relation.Value(g.Source), g.MaxIters)
		for _, en := range gr.Rows {
			resp.Rows = append(resp.Rows, []any{en.Val, int64(en.Idx)})
		}
		resp.Stats, resp.Iterations, conv = mpc.Seq(gr.Build, gr.Stats), gr.Iters, gr.Converged
	case "sssp":
		edges := make([]spmv.Edge[int64], len(ds.Rows))
		for i, row := range ds.Rows {
			if row.W < 0 {
				return nil, &clientError{fmt.Errorf("sssp needs non-negative edge weights; dataset %q has weight %d", req.Relations[0].Name, row.W)}
			}
			edges[i] = spmv.Edge[int64]{Src: row.Vals[0], Dst: row.Vals[1], W: row.W}
		}
		gr := spmv.SSSP(ex, edges, p, o.Seed, relation.Value(g.Source), g.MaxIters)
		for _, en := range gr.Rows {
			resp.Rows = append(resp.Rows, []any{en.Val, int64(en.Idx)})
		}
		resp.Stats, resp.Iterations, conv = mpc.Seq(gr.Build, gr.Stats), gr.Iters, gr.Converged
	case "pagerank":
		edges := make([]spmv.Edge[int64], len(ds.Rows))
		for i, row := range ds.Rows {
			edges[i] = spmv.Edge[int64]{Src: row.Vals[0], Dst: row.Vals[1], W: row.W}
		}
		damping := g.Damping
		if damping == 0 {
			damping = 0.85
		}
		pr := spmv.PageRank(ex, edges, p, o.Seed, damping, g.Tol, g.MaxIters)
		for _, en := range pr.Ranks {
			resp.Rows = append(resp.Rows, []any{en.Val, int64(en.Idx)})
		}
		resp.Stats, resp.Iterations, conv = mpc.Seq(pr.Build, pr.Stats), pr.Iters, pr.Converged
	default:
		// Unreachable past validation; defense against future decoders.
		return nil, &clientError{fmt.Errorf("unknown graph kind %q", g.Kind)}
	}
	resp.Converged = &conv
	return resp, nil
}

// newRelation builds an empty relation carrying the query's schema for
// edge name; the caller fills Rows.
func newRelation[W any](q *hypergraph.Query, name string) *relation.Relation[W] {
	for _, e := range q.Edges {
		if e.Name == name {
			attrs := make([]relation.Attr, len(e.Attrs))
			for i, a := range e.Attrs {
				attrs[i] = relation.Attr(a)
			}
			return relation.New[W](attrs...)
		}
	}
	panic("server: relation not in query: " + name)
}

// runTyped executes the query over a typed instance and renders the rows.
func runTyped[W any](ctx context.Context, sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], o core.Options, annot func(W) any) (*QueryResponse, error) {
	// Validate up front so request-shape problems classify as client
	// errors; whatever core then fails on (beyond cancellation) is an
	// internal engine error on a well-formed request.
	if err := q.Validate(); err != nil {
		return nil, &clientError{err}
	}
	if err := db.Validate(q, inst); err != nil {
		return nil, &clientError{err}
	}
	// The executed plan (chosen engine, candidates, predictions) is read
	// back through the PlanOut observer; it never changes rows or Stats.
	var plan planner.Plan
	o.PlanOut = &plan
	rel, st, err := core.ExecuteContext(ctx, sr, q, inst, o)
	if err != nil {
		return nil, err
	}
	rel.SortRows()
	resp := &QueryResponse{Stats: st, Rows: make([][]any, len(rel.Rows)), plan: &plan}
	for _, a := range rel.Schema() {
		resp.Attrs = append(resp.Attrs, string(a))
	}
	for i, row := range rel.Rows {
		vals := make([]any, 0, len(row.Vals)+1)
		vals = append(vals, annot(row.W))
		for _, v := range row.Vals {
			vals = append(vals, int64(v))
		}
		resp.Rows[i] = vals
	}
	return resp, nil
}
