package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// Serving-plane regression tests: result cache, request coalescing,
// snapshot registry reads, and per-tenant admission — all through the
// HTTP surface, since the invariants they pin are end-to-end ones.

// postTenant posts a JSON body with a tenant header.
func postTenant(t *testing.T, url, tenant, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, []byte(sb.String())
}

// waitFor polls cond until true or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// stripVolatile removes the per-request fields from a decoded response so
// result bodies can be compared for bit-identity of the shared part.
func stripVolatile(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	delete(m, "wall_ns")
	delete(m, "cached")
	delete(m, "coalesced")
	return m
}

func TestCacheHitRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	body := fmt.Sprintf(matmulQueryV2, "")

	resp, cold := postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query = %d %s", resp.StatusCode, cold)
	}
	if strings.Contains(string(cold), `"cached":true`) {
		t.Fatalf("cold query claims cached: %s", cold)
	}

	resp, warm := postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query = %d %s", resp.StatusCode, warm)
	}
	if !strings.Contains(string(warm), `"cached":true`) {
		t.Fatalf("warm query not served from cache: %s", warm)
	}
	coldM, warmM := stripVolatile(t, cold), stripVolatile(t, warm)
	coldJ, _ := json.Marshal(coldM)
	warmJ, _ := json.Marshal(warmM)
	if string(coldJ) != string(warmJ) {
		t.Fatalf("cached result differs from executed:\n cold %s\n warm %s", coldJ, warmJ)
	}
	if got := s.Metrics().Snapshot(); got.Completed != 1 || got.CacheServed != 1 {
		t.Fatalf("completed=%d cache_served=%d, want 1/1", got.Completed, got.CacheServed)
	}
	if cs := s.CacheStats(); cs.Hits != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit, 1 entry", cs)
	}

	// Re-registering a referenced dataset invalidates its cached results
	// and bumps the version the next query pins.
	resp, out := postJSON(t, ts.URL+"/v1/datasets", `{"name":"R1","arity":2,"rows":[[2,0,7],[5,1,7]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register = %d %s", resp.StatusCode, out)
	}
	if cs := s.CacheStats(); cs.Invalidations != 1 || cs.Entries != 0 {
		t.Fatalf("cache stats after re-register = %+v, want 1 invalidation, 0 entries", cs)
	}
	resp, fresh := postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-register query = %d %s", resp.StatusCode, fresh)
	}
	if strings.Contains(string(fresh), `"cached":true`) {
		t.Fatalf("query after re-registration served stale cache: %s", fresh)
	}
	if !strings.Contains(string(fresh), `"dataset_version":3`) {
		t.Fatalf("query should pin version 3 after third registration: %s", fresh)
	}
}

func TestCacheBypassExecutesButWrites(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	bypass := fmt.Sprintf(matmulQueryV2, `,"options":{"cache":"bypass"}`)
	for i := 0; i < 2; i++ {
		resp, out := postJSON(t, ts.URL+"/v2/query", bypass)
		if resp.StatusCode != http.StatusOK || strings.Contains(string(out), `"cached":true`) {
			t.Fatalf("bypass query %d = %d %s", i, resp.StatusCode, out)
		}
	}
	// Both bypass runs executed, but the second one's write means a
	// default-mode reader now hits.
	resp, out := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, ""))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"cached":true`) {
		t.Fatalf("default query after bypass = %d %s, want cache hit", resp.StatusCode, out)
	}
	if got := s.Metrics().Snapshot(); got.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (both bypass runs executed)", got.Completed)
	}
}

func TestCacheOffTouchesNothing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	off := fmt.Sprintf(matmulQueryV2, `,"options":{"cache":"off"}`)
	for i := 0; i < 2; i++ {
		resp, out := postJSON(t, ts.URL+"/v2/query", off)
		if resp.StatusCode != http.StatusOK || strings.Contains(string(out), `"cached":true`) {
			t.Fatalf("off query %d = %d %s", i, resp.StatusCode, out)
		}
	}
	if cs := s.CacheStats(); cs.Entries != 0 || cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("cache touched by off mode: %+v", cs)
	}
	if got := s.Metrics().Snapshot(); got.Completed != 2 {
		t.Fatalf("completed = %d, want 2", got.Completed)
	}
}

func TestBadCacheModeRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	resp, out := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, `,"options":{"cache":"sometimes"}`))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(out), "cache mode") {
		t.Fatalf("bad cache mode = %d %s, want 400", resp.StatusCode, out)
	}
}

// TestCoalescedWaitersShareExecution pins the coalescing contract: N
// concurrent identical queries execute once, and every waiter's rows,
// stats and trace are bit-identical to each other and to an uncoalesced
// (bypass) execution of the same query.
func TestCoalescedWaitersShareExecution(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 1, MaxQueue: 8})
	registerMatMul(t, ts.URL)
	// Hold the whole capacity so the leader parks in the admission queue
	// and the joiners have an in-flight execution to coalesce onto.
	held, err := s.fair.Acquire(context.Background(), "occupier", 1)
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	body := fmt.Sprintf(matmulQueryV2, `,"options":{"trace":true}`)
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		resp, out := postJSON(t, ts.URL+"/v2/query", body)
		results <- result{resp.StatusCode, out}
	}
	wg.Add(1)
	go post()
	waitFor(t, "leader parked in admission queue", func() bool { return s.fair.Queued() == 1 })
	for i := 1; i < n; i++ {
		wg.Add(1)
		go post()
	}
	waitFor(t, "joiners attached to the flight", func() bool { return s.flight.Waiters() == n })
	s.fair.Release(held)
	wg.Wait()
	close(results)

	var bodies [][]byte
	coalesced := 0
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("coalesced query = %d %s", r.status, r.body)
		}
		if strings.Contains(string(r.body), `"coalesced":true`) {
			coalesced++
		}
		bodies = append(bodies, r.body)
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced responses = %d, want %d", coalesced, n-1)
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed != 1 || snap.Coalesced != n-1 {
		t.Fatalf("completed=%d coalesced=%d, want 1/%d", snap.Completed, snap.Coalesced, n-1)
	}

	// Bit-identity: all waiters against each other and against a fresh
	// uncoalesced execution.
	resp, solo := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, `,"options":{"trace":true,"cache":"bypass"}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bypass query = %d %s", resp.StatusCode, solo)
	}
	want, _ := json.Marshal(stripVolatile(t, solo))
	for i, b := range bodies {
		got, _ := json.Marshal(stripVolatile(t, b))
		if string(got) != string(want) {
			t.Fatalf("waiter %d result differs from uncoalesced run:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestWaiterDeadlineExpiresOnlyThatWaiter: a coalesced waiter whose
// deadline fires gets its own 504 while the shared execution keeps
// running and serves the remaining waiter.
func TestWaiterDeadlineExpiresOnlyThatWaiter(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 1, MaxQueue: 8})
	registerMatMul(t, ts.URL)
	held, err := s.fair.Acquire(context.Background(), "occupier", 1)
	if err != nil {
		t.Fatal(err)
	}

	leaderDone := make(chan []byte, 1)
	go func() {
		resp, out := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, ""))
		if resp.StatusCode != http.StatusOK {
			out = fmt.Appendf(nil, "status %d: %s", resp.StatusCode, out)
		}
		leaderDone <- out
	}()
	waitFor(t, "leader parked in admission queue", func() bool { return s.fair.Queued() == 1 })

	// The joiner shares the leader's key (deadline_ms is not part of the
	// result identity) but carries its own 50ms deadline.
	resp, out := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, `,"options":{"deadline_ms":50}`))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired waiter = %d %s, want 504", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), `"cause":"deadline"`) {
		t.Fatalf("expired waiter cause: %s", out)
	}
	if got := s.fair.Queued(); got != 1 {
		t.Fatalf("leader should still be queued after waiter expiry, queued=%d", got)
	}

	s.fair.Release(held)
	leaderBody := <-leaderDone
	if !strings.Contains(string(leaderBody), `"rows":[[6,0,1],[15,1,1]]`) {
		t.Fatalf("leader result after waiter expiry: %s", leaderBody)
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed != 1 || snap.Cancelled != 1 {
		t.Fatalf("completed=%d cancelled=%d, want 1/1", snap.Completed, snap.Cancelled)
	}
	for _, c := range snap.Cancel {
		if c.Name != "deadline" {
			t.Fatalf("cancel cause %q, want deadline only", c.Name)
		}
	}
}

// TestDrainCancelsQueuedSharedExecution: cancelling the server's base
// context during a drain cancels a queued shared execution, and its
// waiters see cause "drain".
func TestDrainCancelsQueuedSharedExecution(t *testing.T) {
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	s, ts := newTestServer(t, Config{Capacity: 1, MaxQueue: 8, BaseContext: baseCtx})
	registerMatMul(t, ts.URL)
	held, err := s.fair.Acquire(context.Background(), "occupier", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.fair.Release(held)

	done := make(chan result2, 1)
	go func() {
		resp, out := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, ""))
		done <- result2{resp.StatusCode, out}
	}()
	waitFor(t, "query parked in admission queue", func() bool { return s.fair.Queued() == 1 })

	s.SetDraining(true)
	cancelBase()
	r := <-done
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("drained waiter = %d %s, want 503", r.status, r.body)
	}
	if !strings.Contains(string(r.body), `"cause":"drain"`) || !strings.Contains(string(r.body), "cancelled (drain)") {
		t.Fatalf("drained waiter body: %s", r.body)
	}
	waitFor(t, "drain cancellation recorded", func() bool {
		for _, c := range s.Metrics().Snapshot().Cancel {
			if c.Name == "drain" && c.Count == 1 {
				return true
			}
		}
		return false
	})
}

type result2 struct {
	status int
	body   []byte
}

// TestRegistrationNeverBlocksQueries: continuous re-registration under
// query load produces zero failed queries — every query resolves against
// a consistent snapshot.
func TestRegistrationNeverBlocksQueries(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	const queriers, queriesEach, registrations = 2, 40, 25
	var wg sync.WaitGroup
	errs := make(chan string, queriers*queriesEach+registrations)
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				resp, out := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, ""))
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("query: %d %s", resp.StatusCode, out)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < registrations; i++ {
			resp, out := postJSON(t, ts.URL+"/v1/datasets", `{"name":"R2","arity":2,"rows":[[3,7,1]]}`)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("register: %d %s", resp.StatusCode, out)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got, want := s.Registry().Version(), uint64(2+registrations); got != want {
		t.Fatalf("registry version = %d, want %d", got, want)
	}
}

// TestTenantQuotaAndIsolation: a tenant that fills its own queue share is
// shed with 429 while another tenant still queues and completes.
func TestTenantQuotaAndIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 1, MaxQueue: 8, TenantQueue: 2})
	registerMatMul(t, ts.URL)
	held, err := s.fair.Acquire(context.Background(), "occupier", 1)
	if err != nil {
		t.Fatal(err)
	}

	// cache off so each request is an independent admission, not a coalesce.
	off := fmt.Sprintf(matmulQueryV2, `,"options":{"cache":"off"}`)
	var wg sync.WaitGroup
	statuses := make(chan int, 3)
	enqueue := func(tenant string, wantQueued int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postTenant(t, ts.URL+"/v2/query", tenant, off)
			statuses <- resp.StatusCode
		}()
		waitFor(t, fmt.Sprintf("%s queue depth %d", tenant, wantQueued), func() bool {
			return s.fair.QueuedFor(tenant) == wantQueued
		})
	}
	enqueue("noisy", 1)
	enqueue("noisy", 2)

	// Third noisy request exceeds the tenant quota: shed immediately.
	resp, out := postTenant(t, ts.URL+"/v2/query", "noisy", off)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota = %d %s, want 429", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), `"cause":"queue_full"`) || !strings.Contains(string(out), "noisy") {
		t.Fatalf("over-quota body: %s", out)
	}

	// The quiet tenant still has queue room.
	enqueue("quiet", 1)

	s.fair.Release(held)
	wg.Wait()
	close(statuses)
	for st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("queued query = %d, want 200", st)
		}
	}
	snap := s.Metrics().Snapshot()
	shed := map[string]int64{}
	for _, c := range snap.TenantShed {
		shed[c.Name] = c.Count
	}
	if shed["noisy"] != 1 || shed["quiet"] != 0 {
		t.Fatalf("tenant_shed = %v, want noisy:1 only", snap.TenantShed)
	}
	served := map[string]int64{}
	for _, c := range snap.TenantServed {
		served[c.Name] = c.Count
	}
	if served["noisy"] != 2 || served["quiet"] != 1 {
		t.Fatalf("tenant_served = %v, want noisy:2 quiet:1", snap.TenantServed)
	}
}

func TestTenantHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	body := fmt.Sprintf(matmulQueryV2, "")
	for _, bad := range []string{"has space", "semi;colon", strings.Repeat("x", 65)} {
		resp, out := postTenant(t, ts.URL+"/v2/query", bad, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tenant %q = %d %s, want 400", bad, resp.StatusCode, out)
		}
		if !strings.Contains(string(out), `"cause":"bad_request"`) {
			t.Fatalf("tenant %q error body: %s", bad, out)
		}
	}
	resp, out := postTenant(t, ts.URL+"/v2/query", "team-a.prod_1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid tenant = %d %s", resp.StatusCode, out)
	}
}

// TestAccessLogEntries pins the structured access log: one entry per
// query with tenant, engine, version, cache and outcome fields.
func TestAccessLogEntries(t *testing.T) {
	var mu sync.Mutex
	var entries []AccessEntry
	cfg := Config{AccessLog: func(e AccessEntry) {
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	}}
	_, ts := newTestServer(t, cfg)
	registerMatMul(t, ts.URL)
	body := fmt.Sprintf(matmulQueryV2, "")

	postTenant(t, ts.URL+"/v2/query", "acme", body) // miss, executes
	postTenant(t, ts.URL+"/v2/query", "acme", body) // hit
	postJSON(t, ts.URL+"/v2/query", `{"relations":[{"name":"nope","attrs":["A"]}]}`)

	mu.Lock()
	defer mu.Unlock()
	if len(entries) != 3 {
		t.Fatalf("access log entries = %d, want 3", len(entries))
	}
	miss, hit, nf := entries[0], entries[1], entries[2]
	if miss.Tenant != "acme" || miss.Status != 200 || miss.CacheHit || miss.Engine != "matmul" || miss.DatasetVersion != 2 {
		t.Fatalf("miss entry = %+v", miss)
	}
	if miss.WallNS <= 0 {
		t.Fatalf("miss entry wall_ns = %d", miss.WallNS)
	}
	if hit.Status != 200 || !hit.CacheHit || hit.QueueNS != 0 {
		t.Fatalf("hit entry = %+v", hit)
	}
	if nf.Status != 404 || nf.Cause != "not_found" || nf.Tenant != DefaultTenant {
		t.Fatalf("not-found entry = %+v", nf)
	}
}
