package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mpcjoin/internal/core"
)

// planOf decodes the "plan" block shared by /v2/plan and explained
// queries.
type planOf struct {
	Class      string `json:"class"`
	Chosen     string `json:"chosen"`
	Reason     string `json:"reason"`
	Candidates []struct {
		Engine        string  `json:"engine"`
		PredictedLoad float64 `json:"predicted_load"`
		Feasible      bool    `json:"feasible"`
	} `json:"candidates"`
	MeasuredLoad int `json:"measured_load"`
}

// TestV2QueryExplain checks the explain block contract: present exactly
// when requested, naming the engine the execution actually ran, carrying
// the ranked candidates, and stamped with the measured load.
func TestV2QueryExplain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	resp, body := postJSON(t, ts.URL+"/v2/query",
		strings.Replace(matmulQueryV2, "%s", `,"options":{"servers":4,"seed":1,"explain":true}`, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explained query = %d %s", resp.StatusCode, body)
	}
	var out struct {
		Engine string  `json:"engine"`
		Stats  struct{ MaxLoad int }
		Plan   *planOf `json:"plan"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan == nil {
		t.Fatalf("explain:true returned no plan block: %s", body)
	}
	if out.Plan.Chosen != out.Engine {
		t.Fatalf("plan chose %q but response ran %q", out.Plan.Chosen, out.Engine)
	}
	if out.Plan.Reason == "" {
		t.Fatal("plan has no reason")
	}
	if out.Plan.MeasuredLoad != out.Stats.MaxLoad {
		t.Fatalf("plan measured_load %d != stats MaxLoad %d", out.Plan.MeasuredLoad, out.Stats.MaxLoad)
	}

	resp, body = postJSON(t, ts.URL+"/v2/query",
		strings.Replace(matmulQueryV2, "%s", `,"options":{"servers":4,"seed":1}`, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain query = %d %s", resp.StatusCode, body)
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["plan"]; ok {
		t.Fatal("plan block leaked into an unexplained response")
	}
}

// TestV2PlanDryRun checks the /v2/plan endpoint: it returns the ranked
// plan without executing, and a subsequent identical /v2/query runs
// exactly the engine the dry run named.
func TestV2PlanDryRun(t *testing.T) {
	var (
		mu      sync.Mutex
		entries []AccessEntry
	)
	s, ts := newTestServer(t, Config{AccessLog: func(e AccessEntry) {
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	}})
	registerMatMul(t, ts.URL)

	reqBody := strings.Replace(matmulQueryV2, "%s", `,"options":{"servers":4,"seed":1}`, 1)
	resp, body := postJSON(t, ts.URL+"/v2/plan", reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan = %d %s", resp.StatusCode, body)
	}
	var pr struct {
		Class          string  `json:"class"`
		Plan           *planOf `json:"plan"`
		DatasetVersion uint64  `json:"dataset_version"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Class != "matmul" || pr.Plan == nil || pr.Plan.Chosen == "" {
		t.Fatalf("dry-run plan = %s", body)
	}
	if pr.Plan.MeasuredLoad != 0 {
		t.Fatalf("dry run must not measure a load: %d", pr.Plan.MeasuredLoad)
	}
	if pr.DatasetVersion == 0 {
		t.Fatal("dry run did not pin a registry version")
	}

	resp, body = postJSON(t, ts.URL+"/v2/query", reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d %s", resp.StatusCode, body)
	}
	var out struct {
		Engine string `json:"engine"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Engine != pr.Plan.Chosen {
		t.Fatalf("dry run chose %q but execution ran %q", pr.Plan.Chosen, out.Engine)
	}

	// Both requests must hit the access log with the plan's engine, and
	// the metrics must count both planner decisions under that engine.
	mu.Lock()
	defer mu.Unlock()
	for _, e := range entries {
		if e.Engine != pr.Plan.Chosen {
			t.Fatalf("access entry %q logged engine %q, want %q", e.Path, e.Engine, pr.Plan.Chosen)
		}
	}
	if len(entries) < 2 {
		t.Fatalf("expected plan + query access entries, got %d", len(entries))
	}
	snap := s.met.Snapshot()
	found := false
	for _, ec := range snap.PlanEngines {
		if ec.Name == pr.Plan.Chosen {
			found = true
			if ec.Count != 2 {
				t.Fatalf("plan_engine_total{%s} = %d, want 2 (one dry run, one query)", ec.Name, ec.Count)
			}
		}
	}
	if !found {
		t.Fatalf("no plan-engine count for %q: %+v", pr.Plan.Chosen, snap.PlanEngines)
	}
}

// TestPlanEngineMetricProm checks the Prometheus rendering of the
// planner-decision counter.
func TestPlanEngineMetricProm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v2/plan",
		strings.Replace(matmulQueryV2, "%s", `,"options":{"servers":4,"seed":1}`, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan = %d %s", resp.StatusCode, body)
	}
	r, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, r)
	if !strings.Contains(out, "mpcd_plan_engine_total{engine=") {
		t.Fatalf("prometheus output missing mpcd_plan_engine_total:\n%s", out)
	}
}

// TestCacheKeyCarriesResolvedEngine pins the bugfix: two executions of
// the same request that resolve to different engines must never share a
// result-cache identity.
func TestCacheKeyCarriesResolvedEngine(t *testing.T) {
	req := &QueryRequest{
		Relations: []QueryRelation{
			{Name: "R1", Attrs: []string{"A", "B"}},
			{Name: "R2", Attrs: []string{"B", "C"}},
		},
		GroupBy: []string{"A", "C"},
	}
	insts := map[string]*Dataset{
		"R1": {Arity: 2, Version: 1},
		"R2": {Arity: 2, Version: 1},
	}
	o := core.Options{Servers: 4}
	o.Engine = "matmul-linear"
	k1 := cacheKey(req, insts, o)
	o.Engine = "yannakakis"
	k2 := cacheKey(req, insts, o)
	if k1 == k2 {
		t.Fatalf("cache key ignores the resolved engine: %s", k1)
	}
	// Explain changes the response body, so it must change the key too.
	req.Explain = true
	if k3 := cacheKey(req, insts, o); k3 == k2 {
		t.Fatal("cache key ignores explain")
	}
}
