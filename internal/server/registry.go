package server

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"mpcjoin/internal/relation"
)

// Dataset is a registered bag of annotated tuples. The rows are immutable
// after registration: queries alias them into per-query relations (the
// engine's initial placement copies rows into shards, never mutating the
// source when the input is not owned), so N rows are stored once no matter
// how many queries read them.
type Dataset struct {
	Arity int
	Rows  []relation.Row[int64]
	// Version is the registry's global version at the moment this dataset
	// (re)registered — a replacement under the same name gets a higher
	// version, which is what keys cached results to the exact data they
	// were computed from.
	Version uint64
}

// RegistryView is an immutable snapshot of the registry: the map is never
// mutated after publication, so any number of queries can read it without
// synchronization while registrations build and publish successor views.
// A query resolves all its relations against one view, pinning the
// dataset versions it runs on for its whole execution.
type RegistryView struct {
	version uint64
	m       map[string]*Dataset
}

// Version is the global registry version this view snapshots: it
// increments on every registration, so equal versions imply identical
// dataset contents.
func (v *RegistryView) Version() uint64 { return v.version }

// Get returns the dataset registered under name in this snapshot.
func (v *RegistryView) Get(name string) (*Dataset, bool) {
	ds, ok := v.m[name]
	return ds, ok
}

// Len returns the number of datasets in this snapshot.
func (v *RegistryView) Len() int { return len(v.m) }

// Names returns the snapshot's dataset names, sorted.
func (v *RegistryView) Names() []string {
	out := make([]string, 0, len(v.m))
	for name := range v.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Registry is the server's dataset store: register once, query many
// times. Reads are lock-free snapshots (View); registrations copy the
// current map, insert, and atomically publish the successor — so a
// registration never blocks an in-flight query, and a query never sees a
// half-applied registration.
type Registry struct {
	mu   sync.Mutex // serializes writers only
	view atomic.Pointer[RegistryView]
}

// NewRegistry returns an empty registry at version 0.
func NewRegistry() *Registry {
	r := &Registry{}
	r.view.Store(&RegistryView{m: map[string]*Dataset{}})
	return r
}

// View returns the current immutable snapshot.
func (r *Registry) View() *RegistryView { return r.view.Load() }

// Put registers (or replaces) a dataset, publishing a new snapshot. The
// registry takes ownership of rows; the caller must not modify the slice
// afterwards.
func (r *Registry) Put(name string, arity int, rows []relation.Row[int64]) error {
	if name == "" {
		return fmt.Errorf("dataset name must be non-empty")
	}
	if arity < 1 || arity > 2 {
		return fmt.Errorf("dataset %q: arity must be 1 or 2, got %d", name, arity)
	}
	for i, row := range rows {
		if len(row.Vals) != arity {
			return fmt.Errorf("dataset %q: row %d has %d values, want %d", name, i, len(row.Vals), arity)
		}
	}
	r.mu.Lock()
	old := r.view.Load()
	next := &RegistryView{version: old.version + 1, m: make(map[string]*Dataset, len(old.m)+1)}
	for k, v := range old.m {
		next.m[k] = v
	}
	next.m[name] = &Dataset{Arity: arity, Rows: rows, Version: next.version}
	r.view.Store(next)
	r.mu.Unlock()
	return nil
}

// Get returns the dataset registered under name in the current snapshot.
func (r *Registry) Get(name string) (*Dataset, bool) { return r.View().Get(name) }

// Len returns the number of registered datasets.
func (r *Registry) Len() int { return r.View().Len() }

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string { return r.View().Names() }

// Version returns the current global registry version.
func (r *Registry) Version() uint64 { return r.View().Version() }

// GenerateRows produces n uniform-random tuples of the given arity with
// values in [0, dom) and annotation 1, deterministically from seed — the
// registration-time generator for smoke tests and demos, so clients need
// not upload megabytes of synthetic rows.
func GenerateRows(arity, n, dom int, seed uint64) []relation.Row[int64] {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	buf := make([]relation.Value, n*arity)
	rows := make([]relation.Row[int64], n)
	for i := range rows {
		vals := buf[i*arity : (i+1)*arity : (i+1)*arity]
		for j := range vals {
			vals[j] = relation.Value(rng.IntN(dom))
		}
		rows[i] = relation.Row[int64]{Vals: vals, W: 1}
	}
	return rows
}
