package server

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"mpcjoin/internal/relation"
)

// Dataset is a registered bag of annotated tuples. The rows are immutable
// after registration: queries alias them into per-query relations (the
// engine's initial placement copies rows into shards, never mutating the
// source when the input is not owned), so N rows are stored once no matter
// how many queries read them.
type Dataset struct {
	Arity int
	Rows  []relation.Row[int64]
}

// Registry is the server's dataset store: register once, query many
// times. Guarded by an RWMutex — registrations are rare, query-side
// lookups are concurrent.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]*Dataset)} }

// Put registers (or replaces) a dataset. The registry takes ownership of
// rows; the caller must not modify the slice afterwards.
func (r *Registry) Put(name string, arity int, rows []relation.Row[int64]) error {
	if name == "" {
		return fmt.Errorf("dataset name must be non-empty")
	}
	if arity < 1 || arity > 2 {
		return fmt.Errorf("dataset %q: arity must be 1 or 2, got %d", name, arity)
	}
	for i, row := range rows {
		if len(row.Vals) != arity {
			return fmt.Errorf("dataset %q: row %d has %d values, want %d", name, i, len(row.Vals), arity)
		}
	}
	r.mu.Lock()
	r.m[name] = &Dataset{Arity: arity, Rows: rows}
	r.mu.Unlock()
	return nil
}

// Get returns the dataset registered under name.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	ds, ok := r.m[name]
	r.mu.RUnlock()
	return ds, ok
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// GenerateRows produces n uniform-random tuples of the given arity with
// values in [0, dom) and annotation 1, deterministically from seed — the
// registration-time generator for smoke tests and demos, so clients need
// not upload megabytes of synthetic rows.
func GenerateRows(arity, n, dom int, seed uint64) []relation.Row[int64] {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	buf := make([]relation.Value, n*arity)
	rows := make([]relation.Row[int64], n)
	for i := range rows {
		vals := buf[i*arity : (i+1)*arity : (i+1)*arity]
		for j := range vals {
			vals[j] = relation.Value(rng.IntN(dom))
		}
		rows[i] = relation.Row[int64]{Vals: vals, W: 1}
	}
	return rows
}
