package server

import (
	"context"

	"mpcjoin/internal/serve"
)

// ErrQueueFull is returned by Semaphore.Acquire (and the server's fair
// queue) when the bounded wait queue is at capacity: the server is
// saturated and the caller should shed the request rather than let the
// queue grow without bound.
var ErrQueueFull = serve.ErrQueueFull

// Semaphore is the service's classic admission controller: a
// context-aware weighted semaphore with a bounded FIFO wait queue. Since
// the serving plane grew per-tenant fairness, it is a single-tenant view
// over serve.FairQueue — one anonymous tenant, whose stride schedule
// degenerates to exactly the old FIFO semantics (a heavy waiter at the
// head is never starved by light late arrivals). Kept as the embedding
// API and as the compatibility surface the pre-tenant tests pin.
type Semaphore struct {
	q *serve.FairQueue
}

// NewSemaphore returns a semaphore admitting up to capacity units of
// concurrent weight, with at most maxQueue waiting acquirers.
func NewSemaphore(capacity int64, maxQueue int) *Semaphore {
	return &Semaphore{q: serve.NewFairQueue(serve.FairConfig{Capacity: capacity, MaxQueue: maxQueue})}
}

// Capacity returns the total admissible weight.
func (s *Semaphore) Capacity() int64 { return s.q.Capacity() }

// Queued returns the current number of waiting acquirers.
func (s *Semaphore) Queued() int { return s.q.Queued() }

// InUse returns the currently held weight.
func (s *Semaphore) InUse() int64 { return s.q.InUse() }

// Acquire blocks until n units of weight are held, ctx is done, or the
// wait queue is full. n is clamped to the capacity so oversized requests
// degrade to "whole machine" rather than deadlocking. On a nil error the
// caller must Release(n) with the same (clamped) value — Acquire returns
// the clamped weight for that purpose.
func (s *Semaphore) Acquire(ctx context.Context, n int64) (int64, error) {
	return s.q.Acquire(ctx, "", n)
}

// Release returns n units of weight and wakes queued waiters in FIFO
// order as capacity allows.
func (s *Semaphore) Release(n int64) { s.q.Release(n) }
