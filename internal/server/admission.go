package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Semaphore.Acquire when the bounded wait
// queue is at capacity: the server is saturated and the caller should shed
// the request rather than let the queue grow without bound.
var ErrQueueFull = errors.New("server: admission queue full")

// Semaphore is a context-aware weighted semaphore with a bounded FIFO wait
// queue — the admission controller of the query service. Each query
// acquires a weight proportional to the OS parallelism it will consume, so
// total concurrent worker demand stays at or below the configured
// capacity; excess queries wait in arrival order, and beyond the queue
// bound they are rejected immediately with ErrQueueFull (load shedding).
//
// Hand-rolled on sync.Mutex + channels rather than importing a semaphore
// package: the module is stdlib-only by design. The shape follows the
// classic weighted-semaphore construction — waiters park on a per-waiter
// channel; Release hands capacity to the queue head first, so a heavy
// waiter at the head is never starved by light late arrivals.
type Semaphore struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	waiters  list.List // of *waiter, FIFO
	maxQueue int
}

type waiter struct {
	n     int64
	ready chan struct{} // closed by Release when the waiter holds its weight
}

// NewSemaphore returns a semaphore admitting up to capacity units of
// concurrent weight, with at most maxQueue waiting acquirers.
func NewSemaphore(capacity int64, maxQueue int) *Semaphore {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Semaphore{capacity: capacity, maxQueue: maxQueue}
}

// Capacity returns the total admissible weight.
func (s *Semaphore) Capacity() int64 { return s.capacity }

// Queued returns the current number of waiting acquirers.
func (s *Semaphore) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}

// InUse returns the currently held weight.
func (s *Semaphore) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

// Acquire blocks until n units of weight are held, ctx is done, or the
// wait queue is full. n is clamped to the capacity so oversized requests
// degrade to "whole machine" rather than deadlocking. On a nil error the
// caller must Release(n) with the same (clamped) value — Acquire returns
// the clamped weight for that purpose.
func (s *Semaphore) Acquire(ctx context.Context, n int64) (int64, error) {
	if n < 1 {
		n = 1
	}
	if n > s.capacity {
		n = s.capacity
	}
	s.mu.Lock()
	// Fast path: capacity available and nobody queued ahead (FIFO — a
	// light request must not overtake a parked heavy one).
	if s.waiters.Len() == 0 && s.inUse+n <= s.capacity {
		s.inUse += n
		s.mu.Unlock()
		return n, nil
	}
	if s.waiters.Len() >= s.maxQueue {
		s.mu.Unlock()
		return 0, ErrQueueFull
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return n, nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Release granted the weight concurrently with cancellation;
			// the caller is abandoning, so give it straight back.
			s.mu.Unlock()
			s.Release(n)
			return 0, ctx.Err()
		default:
			s.waiters.Remove(elem)
			// Removing a waiter can unblock those behind it (the departed
			// waiter may have been the head that capacity was reserved for).
			s.notifyLocked()
			s.mu.Unlock()
			return 0, ctx.Err()
		}
	}
}

// Release returns n units of weight and wakes queued waiters in FIFO order
// as capacity allows.
func (s *Semaphore) Release(n int64) {
	s.mu.Lock()
	s.inUse -= n
	if s.inUse < 0 {
		s.mu.Unlock()
		panic("server: semaphore released more than held")
	}
	s.notifyLocked()
	s.mu.Unlock()
}

// notifyLocked grants capacity to the queue head while it fits; it stops
// at the first waiter that does not fit, preserving FIFO fairness.
func (s *Semaphore) notifyLocked() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if s.inUse+w.n > s.capacity {
			return
		}
		s.inUse += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}
