package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSemaphoreFastPath(t *testing.T) {
	s := NewSemaphore(4, 2)
	n, err := s.Acquire(context.Background(), 3)
	if err != nil || n != 3 {
		t.Fatalf("Acquire = (%d, %v)", n, err)
	}
	if got := s.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}
	s.Release(3)
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
}

func TestSemaphoreClampsOversized(t *testing.T) {
	s := NewSemaphore(2, 2)
	n, err := s.Acquire(context.Background(), 100)
	if err != nil || n != 2 {
		t.Fatalf("Acquire(100) = (%d, %v), want clamp to capacity 2", n, err)
	}
	s.Release(n)
}

func TestSemaphoreQueueFull(t *testing.T) {
	s := NewSemaphore(1, 1)
	if _, err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, 1)
		if err == nil {
			s.Release(1)
		}
		done <- err
	}()
	// Wait until the waiter is parked.
	for s.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	// The queue is full now: the next acquire must be shed immediately.
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire on full queue = %v, want ErrQueueFull", err)
	}
	s.Release(1) // hands capacity to the parked waiter
	if err := <-done; err != nil {
		t.Fatalf("parked waiter: %v", err)
	}
}

func TestSemaphoreAcquireRespectsContext(t *testing.T) {
	s := NewSemaphore(1, 4)
	if _, err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	defer s.Release(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, 1)
		done <- err
	}()
	for s.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Acquire did not return")
	}
	if got := s.Queued(); got != 0 {
		t.Fatalf("Queued after cancel = %d, want 0", got)
	}
}

// TestSemaphoreFIFO checks a light late arrival cannot overtake a parked
// heavy waiter, and that weights are conserved under concurrency.
func TestSemaphoreFIFO(t *testing.T) {
	s := NewSemaphore(4, 16)
	if _, err := s.Acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	heavyHas := make(chan struct{})
	go func() {
		if _, err := s.Acquire(context.Background(), 3); err != nil {
			t.Error(err)
		}
		close(heavyHas)
	}()
	for s.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Capacity 4, 3 in use: a weight-1 acquire would fit, but the heavy
	// waiter is ahead — FIFO parks the light one behind it.
	lightHas := make(chan struct{})
	go func() {
		if _, err := s.Acquire(context.Background(), 1); err != nil {
			t.Error(err)
		}
		close(lightHas)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-lightHas:
		t.Fatal("light acquire overtook parked heavy waiter")
	default:
	}
	s.Release(3) // heavy (3) admitted; light (1) fits alongside it
	<-heavyHas
	<-lightHas
	s.Release(3)
	s.Release(1)
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
}

// TestSemaphoreStress hammers the semaphore from many goroutines and
// checks the capacity invariant is never violated. Run under -race.
func TestSemaphoreStress(t *testing.T) {
	const cap = 5
	s := NewSemaphore(cap, 1024)
	var wg sync.WaitGroup
	var mu sync.Mutex
	held := int64(0)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w := int64(g%3 + 1)
				n, err := s.Acquire(context.Background(), w)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				held += n
				if held > cap {
					t.Errorf("capacity invariant violated: %d > %d", held, cap)
				}
				held -= n
				mu.Unlock()
				s.Release(n)
			}
		}(g)
	}
	wg.Wait()
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse = %d after stress, want 0", got)
	}
}
