package server

import (
	"fmt"
	"strings"

	"mpcjoin/internal/core"
)

// Cache-control modes of a query ("options":{"cache": ...} in v2).
//
// The soundness argument for serving from cache at all: the MPC engine is
// deterministic — same dataset versions, same canonical options, same
// semiring ⇒ bit-identical rows, Stats, trace and fault report — so a
// cached result is indistinguishable from a fresh execution. The modes
// only control whether the caller wants to pay for the recomputation.
const (
	// cacheDefault reads the cache, coalesces onto identical in-flight
	// executions, and writes results back.
	cacheDefault = ""
	// cacheBypass skips the read and the coalescing — the query always
	// executes fresh (cold-path benchmarking) — but still writes its
	// result for later readers.
	cacheBypass = "bypass"
	// cacheOff touches nothing: no read, no write, no coalescing. Forced
	// for /v1/query, which predates the cache and whose clients pin
	// per-request execution semantics.
	cacheOff = "off"
)

var validCacheModes = map[string]bool{cacheDefault: true, "default": true, cacheBypass: true, cacheOff: true}

// cacheKey builds the exact-string result-cache key of a query. Exact
// strings rather than hashes: keys live only in the bounded cache map, and
// string equality cannot collide, so a hit is a proof of identity.
//
// The key covers everything that determines the result bytes:
//
//   - each relation binding, with the dataset's registration version — a
//     re-registered dataset changes the version and thus the key, so stale
//     hits are structurally impossible even without invalidation;
//   - the group-by list and the semiring;
//   - the canonical fingerprint of the resolved engine options (servers,
//     strategy, forced/resolved engine, seeds, fault schedule — see
//     core.ResultFingerprint);
//   - the resolved engine again as an explicit key component: for
//     auto-planned queries the server resolves the plan before keying, so
//     a planner decision that flips with the data can never cross-serve a
//     result computed by a different engine;
//   - whether a trace or an explanation was requested, since the response
//     body differs.
//
// Relation order is preserved: two permutations of the same join key
// differently and may both miss — a correctness-neutral inefficiency.
func cacheKey(req *QueryRequest, insts map[string]*Dataset, o core.Options) string {
	var b strings.Builder
	for _, rel := range req.Relations {
		ds := insts[rel.Name]
		dsName := rel.Dataset
		if dsName == "" {
			dsName = rel.Name
		}
		fmt.Fprintf(&b, "rel=%q attrs=%q ds=%q@%d;", rel.Name, strings.Join(rel.Attrs, ","), dsName, ds.Version)
	}
	fmt.Fprintf(&b, "group_by=%q;semiring=%q;trace=%v;explain=%v;engine=%q;opts=%016x",
		strings.Join(req.GroupBy, ","), req.Semiring, req.Trace, req.Explain, o.Engine, o.ResultFingerprint())
	if g := req.Graph; g != nil {
		// Graph-driver parameters are not core options, so they are not in
		// the fingerprint; a graph run must never share identity with the
		// plain query over the same relation (or with other driver params).
		fmt.Fprintf(&b, ";graph=%s src=%d iters=%d damping=%v tol=%v", g.Kind, g.Source, g.MaxIters, g.Damping, g.Tol)
	}
	return b.String()
}

// cacheTags returns the dataset names a query read — the invalidation
// tags its cached result carries, so a registration drops exactly the
// entries it obsoletes. (Version-carrying keys already make stale hits
// impossible; tag invalidation reclaims the memory and surfaces the
// mpcd_cache_invalidations_total signal.)
func cacheTags(req *QueryRequest) []string {
	tags := make([]string, 0, len(req.Relations))
	seen := make(map[string]bool, len(req.Relations))
	for _, rel := range req.Relations {
		dsName := rel.Dataset
		if dsName == "" {
			dsName = rel.Name
		}
		if !seen[dsName] {
			seen[dsName] = true
			tags = append(tags, dsName)
		}
	}
	return tags
}
