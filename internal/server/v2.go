package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"mpcjoin/internal/mpc"
)

// v2.go is the /v2/query surface: an explicit options object instead of
// v1's flat knob soup, a fault-injection block, and a typed error
// envelope carrying a machine-readable cause. /v1/query remains a thin
// adapter over the same execution path (see serveQuery): it keeps its
// flat request shape and its legacy {"error": "..."} responses, and
// advertises its successor with a Deprecation header.

// FaultBlock is the "faults" object of a v2 query: the wire form of
// mpc.FaultSpec. All fields are optional; a present block with all-zero
// probabilities and no crash round injects nothing.
type FaultBlock struct {
	// Seed seeds the fault schedule; 0 derives it from the query seed.
	Seed uint64 `json:"seed,omitempty"`
	// StragglerProb delays a random server's messages each round with
	// this probability; StragglerDelay is the simulated delay in load
	// units (absorbed at the barrier, never retried).
	StragglerProb  float64 `json:"straggler_prob,omitempty"`
	StragglerDelay int64   `json:"straggler_delay,omitempty"`
	// CrashProb crashes a random destination server in a round with this
	// probability; CrashRound (1-based) deterministically crashes one in
	// that specific round. A crashed round is retried from its pre-round
	// checkpoint.
	CrashProb  float64 `json:"crash_prob,omitempty"`
	CrashRound int     `json:"crash_round,omitempty"`
	// DropProb withholds one random message in a round with this
	// probability; detected by count verification and retried.
	DropProb float64 `json:"drop_prob,omitempty"`
	// MaxRetries bounds retries per faulty round: 0 = engine default,
	// negative = no retries (first detected fault fails the query).
	MaxRetries int `json:"max_retries,omitempty"`
	// StopAfter stops injection after this many rounds (0 = no limit).
	StopAfter int `json:"stop_after,omitempty"`
}

// maxFaultRetries caps the per-round retry budget a request may ask for;
// retries are simulated work, so an unbounded budget would be an
// amplification knob.
const maxFaultRetries = 64

// Spec converts the wire block to the engine's FaultSpec.
func (fb *FaultBlock) Spec(querySeed uint64) mpc.FaultSpec {
	seed := fb.Seed
	if seed == 0 {
		seed = querySeed + 1
	}
	return mpc.FaultSpec{
		Seed:           seed,
		StragglerProb:  fb.StragglerProb,
		StragglerDelay: fb.StragglerDelay,
		CrashProb:      fb.CrashProb,
		CrashRound:     fb.CrashRound,
		DropProb:       fb.DropProb,
		MaxRetries:     fb.MaxRetries,
		StopAfter:      fb.StopAfter,
	}
}

func (fb *FaultBlock) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"straggler_prob", fb.StragglerProb},
		{"crash_prob", fb.CrashProb},
		{"drop_prob", fb.DropProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults.%s must be in [0, 1], got %v", p.name, p.v)
		}
	}
	if fb.StragglerDelay < 0 {
		return fmt.Errorf("faults.straggler_delay must be non-negative, got %d", fb.StragglerDelay)
	}
	if fb.CrashRound < 0 {
		return fmt.Errorf("faults.crash_round must be non-negative, got %d", fb.CrashRound)
	}
	if fb.MaxRetries > maxFaultRetries {
		return fmt.Errorf("faults.max_retries must be at most %d, got %d", maxFaultRetries, fb.MaxRetries)
	}
	if fb.StopAfter < 0 {
		return fmt.Errorf("faults.stop_after must be non-negative, got %d", fb.StopAfter)
	}
	return nil
}

// maxGraphIters caps the iteration budget a graph query may ask for:
// every iteration is simulated rounds of work, so an unbounded budget
// would be an amplification knob (same reasoning as maxFaultRetries).
const maxGraphIters = 4096

// GraphBlock is the "graph" object of a v2 query: it turns the request
// into an iterated graph-analytics run (BFS, SSSP or PageRank) over a
// single binary edge relation E(src, dst) whose annotations are the edge
// weights. Incompatible with group_by, strategy and semiring — the driver
// fixes the semiring (Bools, MinPlus, Floats respectively).
type GraphBlock struct {
	// Kind selects the driver: "bfs", "sssp" or "pagerank".
	Kind string `json:"kind"`
	// Source is the start vertex (bfs/sssp; rejected for pagerank).
	Source int64 `json:"source,omitempty"`
	// MaxIters bounds the driver loop; 0 selects the driver's default
	// (BFS/PageRank: a fixed cap; SSSP: the Bellman-Ford |V|+1 bound). A
	// budget-exhausted run answers with "converged": false, not an error.
	MaxIters int `json:"max_iters,omitempty"`
	// Damping is PageRank's damping factor in (0, 1); 0 selects 0.85.
	Damping float64 `json:"damping,omitempty"`
	// Tol is PageRank's L∞ convergence threshold; 0 selects 1e-9.
	Tol float64 `json:"tol,omitempty"`
}

func (g *GraphBlock) validate() error {
	switch g.Kind {
	case "bfs", "sssp":
		if g.Damping != 0 {
			return fmt.Errorf("graph.damping applies to pagerank, not %s", g.Kind)
		}
		if g.Tol != 0 {
			return fmt.Errorf("graph.tol applies to pagerank, not %s", g.Kind)
		}
	case "pagerank":
		if g.Source != 0 {
			return fmt.Errorf("graph.source applies to bfs/sssp, not pagerank")
		}
		if g.Damping < 0 || g.Damping >= 1 {
			return fmt.Errorf("graph.damping must be in (0, 1) or 0 for the default, got %v", g.Damping)
		}
		if g.Tol < 0 {
			return fmt.Errorf("graph.tol must be non-negative, got %v", g.Tol)
		}
	default:
		return fmt.Errorf("unknown graph.kind %q (want bfs, sssp or pagerank)", g.Kind)
	}
	if g.MaxIters < 0 || g.MaxIters > maxGraphIters {
		return fmt.Errorf("graph.max_iters must be in [0, %d], got %d", maxGraphIters, g.MaxIters)
	}
	return nil
}

// QueryOptions is the explicit options object of a v2 query. It holds
// every execution knob that is not part of the query itself; the query
// shape (relations, group_by, strategy, semiring) stays top-level.
type QueryOptions struct {
	// Servers is the simulated cluster size p (default 16).
	Servers int `json:"servers,omitempty"`
	// Workers sizes this query's OS worker pool: 0 = serial (default),
	// -1 = GOMAXPROCS, n > 0 = n workers.
	Workers int `json:"workers,omitempty"`
	// Seed drives hash partitioning and estimators (reproducibility).
	Seed uint64 `json:"seed,omitempty"`
	// Trace returns the per-round load timeline in the response.
	Trace bool `json:"trace,omitempty"`
	// Faults runs the query under the deterministic fault plane.
	Faults *FaultBlock `json:"faults,omitempty"`
	// DeadlineMS bounds queue wait plus execution wall time.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Cache is the cache-control mode: "" or "default" reads the result
	// cache, coalesces onto identical in-flight executions and writes the
	// result back; "bypass" always executes fresh but still writes;
	// "off" touches the cache not at all.
	Cache string `json:"cache,omitempty"`
	// Explain returns the planner's explanation — class, ranked
	// candidates with predicted loads, chosen engine and why — as the
	// response's "plan" block. Rows and stats are unchanged.
	Explain bool `json:"explain,omitempty"`
}

// QueryRequestV2 is the body of POST /v2/query.
type QueryRequestV2 struct {
	Relations []QueryRelation `json:"relations"`
	GroupBy   []string        `json:"group_by,omitempty"`
	Strategy  string          `json:"strategy,omitempty"`
	Semiring  string          `json:"semiring,omitempty"`
	// Graph turns the request into an iterated graph-analytics run over
	// the single bound edge relation (v2-only, like the faults block).
	Graph   *GraphBlock   `json:"graph,omitempty"`
	Options *QueryOptions `json:"options,omitempty"`
}

// DecodeQueryRequestV2 parses and validates a v2 query body and
// normalizes it into the shared QueryRequest the execution path runs on.
// Validation rules are those of DecodeQueryRequest plus the faults
// block; the flat v1 knobs arriving top-level in a v2 body are unknown
// fields and rejected.
func DecodeQueryRequestV2(r io.Reader) (*QueryRequest, error) {
	var v2 QueryRequestV2
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v2); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	req := &QueryRequest{
		Relations: v2.Relations,
		GroupBy:   v2.GroupBy,
		Strategy:  v2.Strategy,
		Semiring:  v2.Semiring,
		Graph:     v2.Graph,
	}
	if o := v2.Options; o != nil {
		req.Servers = o.Servers
		req.Workers = o.Workers
		req.Seed = o.Seed
		req.Trace = o.Trace
		req.DeadlineMS = o.DeadlineMS
		req.Faults = o.Faults
		req.Cache = o.Cache
		req.Explain = o.Explain
	}
	if err := validateQueryRequest(req); err != nil {
		return nil, err
	}
	return req, nil
}

// apiVersion selects the wire dialect of a query endpoint: how the body
// decodes and how errors render.
type apiVersion int

const (
	apiV1 apiVersion = 1
	apiV2 apiVersion = 2
)

// v2Error is the typed error envelope of the v2 API:
//
//	{"error": {"code": 404, "cause": "not_found", "message": "..."}}
//
// code mirrors the HTTP status; cause is a stable machine-readable
// classifier (bad_request, not_found, queue_full, deadline, drain,
// fault_budget, internal); message is human-readable detail.
type v2Error struct {
	Code    int    `json:"code"`
	Cause   string `json:"cause"`
	Message string `json:"message"`
}

type v2ErrorBody struct {
	Error v2Error `json:"error"`
}

// writeError renders an error in the version's dialect. v1 keeps the
// legacy flat {"error": "message"} shape byte-for-byte (clients parse
// it); v2 wraps the typed envelope. The cause is dropped on v1, which
// predates causes.
func (v apiVersion) writeError(w http.ResponseWriter, status int, cause, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if v == apiV1 {
		writeJSON(w, status, errorBody{Error: msg})
		return
	}
	writeJSON(w, status, v2ErrorBody{Error: v2Error{Code: status, Cause: cause, Message: msg}})
}

// markDeprecated stamps the deprecation headers on a v1 query response,
// pointing clients at the successor endpoint. Header form follows RFC
// 8594 (Link rel) and the Deprecation header draft.
func markDeprecated(w http.ResponseWriter) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v2/query>; rel="successor-version"`)
}
