package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

const matmulQueryV2 = `{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A","C"]%s}`

// TestV2QueryGolden pins the full /v2/query response body (wall_ns
// zeroed): the v2 wire shape is a contract, and any drift must be a
// conscious change to this golden string.
func TestV2QueryGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	resp, body := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, `,"options":{"servers":4,"seed":1}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 query = %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("v2 response must not carry a Deprecation header")
	}

	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if _, ok := out["wall_ns"]; !ok {
		t.Fatal("response missing wall_ns")
	}
	out["wall_ns"] = 0 // nondeterministic; zero before comparing
	got, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"attrs":["A","C"],"class":"matmul","dataset_version":2,"engine":"matmul","rows":[[6,0,1],[15,1,1]],"stats":{"MaxLoad":4,"Rounds":20,"SumLoad":45,"TotalComm":92},"wall_ns":0}`
	if string(got) != golden {
		t.Errorf("v2 golden mismatch:\n got %s\nwant %s", got, golden)
	}
}

// TestV1QueryGoldenAndDeprecation pins the v1 response body (byte
// compatibility with pre-v2 clients) and the deprecation headers the
// adapter stamps on it.
func TestV1QueryGoldenAndDeprecation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	resp, body := postJSON(t, ts.URL+"/v1/query", fmt.Sprintf(matmulQuery, `,"servers":4,"seed":1`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 query = %d %s", resp.StatusCode, body)
	}
	if dep := resp.Header.Get("Deprecation"); dep != "true" {
		t.Errorf("v1 Deprecation header = %q, want \"true\"", dep)
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v2/query") {
		t.Errorf("v1 Link header = %q, want successor /v2/query", link)
	}

	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	out["wall_ns"] = 0
	got, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"attrs":["A","C"],"class":"matmul","engine":"matmul","rows":[[6,0,1],[15,1,1]],"stats":{"MaxLoad":4,"Rounds":20,"SumLoad":45,"TotalComm":92},"wall_ns":0}`
	if string(got) != golden {
		t.Errorf("v1 golden mismatch:\n got %s\nwant %s", got, golden)
	}
}

// TestV2ErrorEnvelope sweeps the typed error envelope's causes.
func TestV2ErrorEnvelope(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	check := func(t *testing.T, status int, cause string, body []byte) {
		t.Helper()
		var out v2ErrorBody
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("error body is not the v2 envelope: %v (%s)", err, body)
		}
		if out.Error.Code != status {
			t.Errorf("envelope code %d != HTTP status %d", out.Error.Code, status)
		}
		if out.Error.Cause != cause {
			t.Errorf("cause = %q, want %q", out.Error.Cause, cause)
		}
		if out.Error.Message == "" {
			t.Error("empty message")
		}
	}

	t.Run("bad_request", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v2/query", `{"relations":[]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d", resp.StatusCode)
		}
		check(t, resp.StatusCode, "bad_request", body)
	})
	t.Run("v1-knobs-rejected", func(t *testing.T) {
		// Flat v1 knobs are unknown fields in a v2 body.
		resp, body := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, `,"servers":4`))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d %s", resp.StatusCode, body)
		}
		check(t, resp.StatusCode, "bad_request", body)
	})
	t.Run("not_found", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v2/query", `{"relations":[{"name":"Nope","attrs":["A","B"]}]}`)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d", resp.StatusCode)
		}
		check(t, resp.StatusCode, "not_found", body)
	})
	t.Run("fault_budget", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v2/query",
			fmt.Sprintf(matmulQueryV2, `,"options":{"servers":4,"faults":{"crash_prob":1,"max_retries":1}}`))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d %s", resp.StatusCode, body)
		}
		check(t, resp.StatusCode, "fault_budget", body)
		snap := s.Metrics().Snapshot()
		if snap.FaultBudgetExceeded != 1 {
			t.Errorf("fault_budget_exceeded = %d, want 1", snap.FaultBudgetExceeded)
		}
		if snap.FaultsInjected == 0 {
			t.Error("faults_injected = 0 after injecting")
		}
	})
	t.Run("drain", func(t *testing.T) {
		s.SetDraining(true)
		defer s.SetDraining(false)
		resp, body := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, ""))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d", resp.StatusCode)
		}
		check(t, resp.StatusCode, "drain", body)
	})

	t.Run("v1-error-shape-unchanged", func(t *testing.T) {
		// The v1 adapter must keep the legacy flat error shape.
		resp, body := postJSON(t, ts.URL+"/v1/query", `{"relations":[]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if _, ok := out["error"].(string); !ok {
			t.Errorf("v1 error must be a flat string, got %s", body)
		}
	})
}

// TestV2FaultedQueryTransparent: a v2 query with an absorbable fault
// schedule returns rows and stats identical to the fault-free query,
// plus the fault report; the fault counters aggregate on /metrics.
func TestV2FaultedQueryTransparent(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	respFree, bodyFree := postJSON(t, ts.URL+"/v2/query", fmt.Sprintf(matmulQueryV2, `,"options":{"servers":4,"seed":1}`))
	if respFree.StatusCode != http.StatusOK {
		t.Fatalf("fault-free query = %d %s", respFree.StatusCode, bodyFree)
	}
	resp, body := postJSON(t, ts.URL+"/v2/query",
		fmt.Sprintf(matmulQueryV2, `,"options":{"servers":4,"seed":1,"faults":{"seed":9,"crash_prob":0.3,"drop_prob":0.3,"max_retries":10}}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted query = %d %s", resp.StatusCode, body)
	}

	var free, faulted QueryResponse
	if err := json.Unmarshal(bodyFree, &free); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &faulted); err != nil {
		t.Fatal(err)
	}
	if faulted.Faults == nil {
		t.Fatal("faulted response missing faults report")
	}
	if free.Faults != nil {
		t.Fatal("fault-free response must omit faults")
	}
	if faulted.Stats != free.Stats {
		t.Errorf("faulted stats %+v != fault-free %+v", faulted.Stats, free.Stats)
	}
	if fmt.Sprint(faulted.Rows) != fmt.Sprint(free.Rows) {
		t.Errorf("faulted rows differ:\n%v\n%v", faulted.Rows, free.Rows)
	}
	if faulted.Faults.Injected == 0 {
		t.Error("fault schedule injected nothing; pick a richer seed")
	}

	snap := s.Metrics().Snapshot()
	if snap.FaultsInjected != int64(faulted.Faults.Injected) {
		t.Errorf("metrics faults_injected = %d, want %d", snap.FaultsInjected, faulted.Faults.Injected)
	}
	if snap.FaultsRetried != int64(faulted.Faults.Retried) {
		t.Errorf("metrics faults_retried = %d, want %d", snap.FaultsRetried, faulted.Faults.Retried)
	}
	if len(snap.FaultKinds) == 0 {
		t.Error("metrics fault_kinds empty")
	}
}

// TestV2DecodeFaultBounds rejects out-of-domain fault blocks at decode.
func TestV2DecodeFaultBounds(t *testing.T) {
	bad := []string{
		`{"crash_prob":1.5}`,
		`{"drop_prob":-0.1}`,
		`{"straggler_prob":2}`,
		`{"straggler_delay":-1}`,
		`{"crash_round":-1}`,
		`{"max_retries":65}`,
		`{"stop_after":-1}`,
	}
	for _, fb := range bad {
		body := fmt.Sprintf(matmulQueryV2, `,"options":{"faults":`+fb+`}`)
		if _, err := DecodeQueryRequestV2(strings.NewReader(body)); err == nil {
			t.Errorf("fault block %s decoded without error", fb)
		}
	}
	ok := fmt.Sprintf(matmulQueryV2, `,"options":{"faults":{"crash_prob":0.5,"max_retries":-1}}`)
	req, err := DecodeQueryRequestV2(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid fault block rejected: %v", err)
	}
	if req.Faults == nil || req.Faults.CrashProb != 0.5 {
		t.Errorf("fault block not normalized: %+v", req.Faults)
	}
}
