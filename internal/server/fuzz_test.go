package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDecodeQueryRequest asserts the query decoder's contract over
// arbitrary bytes: it returns a validated request or an error — it must
// never panic, and anything it accepts must satisfy the documented
// bounds (so a hostile body cannot smuggle out-of-range parameters past
// validation into the engine).
func FuzzDecodeQueryRequest(f *testing.F) {
	f.Add(`{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A","C"]}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A"],"dataset":"ds"}],"servers":32,"strategy":"tree","semiring":"maxmin","workers":-1,"deadline_ms":100,"seed":7}`)
	f.Add(`{"relations":[]}`)
	f.Add(`{"relations":[{"name":"","attrs":[]}]}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`null`)
	f.Add(`[1,2,3]`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B","C"]}]}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"workers":9999999}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"deadline_ms":-5}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"strategy":"☃"}`)
	f.Add(strings.Repeat(`{"relations":`, 100))
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeQueryRequest(strings.NewReader(body))
		if err != nil {
			return // rejected input: the handler maps this to a 4xx
		}
		if len(req.Relations) == 0 || len(req.Relations) > maxRelations {
			t.Fatalf("accepted request with %d relations", len(req.Relations))
		}
		for _, rel := range req.Relations {
			if rel.Name == "" || len(rel.Attrs) < 1 || len(rel.Attrs) > 2 {
				t.Fatalf("accepted malformed relation %+v", rel)
			}
		}
		if req.Servers < 0 || req.Servers > maxServers ||
			req.Workers < -1 || req.Workers > maxQueryWorkers ||
			req.DeadlineMS < 0 || req.DeadlineMS > maxDeadlineMS {
			t.Fatalf("accepted out-of-range numerics %+v", req)
		}
		if !validStrategies[req.Strategy] || !validSemirings[req.Semiring] {
			t.Fatalf("accepted unknown strategy/semiring %+v", req)
		}
	})
}

// FuzzDecodeQueryRequestV2 is the same contract for the v2 decoder,
// plus the invariants of the faults block and the v2-specific rule that
// flat v1 knobs are unknown fields.
func FuzzDecodeQueryRequestV2(f *testing.F) {
	f.Add(`{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A","C"]}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A"]}],"options":{"servers":32,"workers":-1,"seed":7,"deadline_ms":100,"trace":true}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"faults":{"crash_prob":0.5,"drop_prob":0.2,"max_retries":8}}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"faults":{"crash_prob":1.5}}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"faults":{"max_retries":9999}}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"servers":4}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":null}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"cache":"bypass"}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"cache":"default"}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"cache":"sometimes"}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"cache":""}}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeQueryRequestV2(strings.NewReader(body))
		if err != nil {
			return // rejected input: the handler maps this to a 4xx
		}
		if len(req.Relations) == 0 || len(req.Relations) > maxRelations {
			t.Fatalf("accepted request with %d relations", len(req.Relations))
		}
		if req.Servers < 0 || req.Servers > maxServers ||
			req.Workers < -1 || req.Workers > maxQueryWorkers ||
			req.DeadlineMS < 0 || req.DeadlineMS > maxDeadlineMS {
			t.Fatalf("accepted out-of-range numerics %+v", req)
		}
		if !validStrategies[req.Strategy] || !validSemirings[req.Semiring] {
			t.Fatalf("accepted unknown strategy/semiring %+v", req)
		}
		if !validCacheModes[req.Cache] {
			t.Fatalf("accepted unknown cache mode %q", req.Cache)
		}
		if fb := req.Faults; fb != nil {
			if fb.CrashProb < 0 || fb.CrashProb > 1 ||
				fb.DropProb < 0 || fb.DropProb > 1 ||
				fb.StragglerProb < 0 || fb.StragglerProb > 1 ||
				fb.StragglerDelay < 0 || fb.CrashRound < 0 ||
				fb.MaxRetries > maxFaultRetries || fb.StopAfter < 0 {
				t.Fatalf("accepted out-of-range fault block %+v", fb)
			}
			// Whatever the decoder accepts must construct a valid plane.
			if err := fb.Spec(req.Seed).Validate(); err != nil {
				t.Fatalf("accepted fault block fails engine validation: %v (%+v)", err, fb)
			}
		}
	})
}

// FuzzDecodeDatasetRequest is the same contract for the registration
// decoder.
func FuzzDecodeDatasetRequest(f *testing.F) {
	f.Add(`{"name":"R1","arity":2,"rows":[[2,0,7],[5,1,7]]}`)
	f.Add(`{"name":"E","arity":2,"generate":{"n":100,"dom":10,"seed":3}}`)
	f.Add(`{"name":"X","arity":1,"rows":[[1]]}`)
	f.Add(`{"arity":0}`)
	f.Add(`{"name":"X","arity":2,"rows":[[1,2,3]],"generate":{"n":1,"dom":1}}`)
	f.Add(`{"name":"X"}`)
	f.Add(`"str"`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeDatasetRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		if req.Name == "" || req.Arity < 1 || req.Arity > 2 {
			t.Fatalf("accepted malformed dataset request %+v", req)
		}
		for i, row := range req.Rows {
			if len(row) != req.Arity+1 {
				t.Fatalf("accepted row %d of width %d for arity %d", i, len(row), req.Arity)
			}
		}
		if g := req.Generate; g != nil && (g.N < 0 || g.N > maxGeneratedN || g.Dom < 1) {
			t.Fatalf("accepted out-of-range generator %+v", g)
		}
	})
}

// FuzzQueryEndpoint drives the whole handler with arbitrary bodies: the
// response must always be a well-formed HTTP status — 4xx for garbage —
// and the server must not panic regardless of input.
func FuzzQueryEndpoint(f *testing.F) {
	f.Add(`{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A","C"]}`)
	f.Add(`{"relations":[{"name":"R1","attrs":["A","A"]}]}`)
	f.Add(`{{{`)
	s := New(Config{})
	_ = s.Registry().Put("R1", 2, GenerateRows(2, 50, 8, 1))
	_ = s.Registry().Put("R2", 2, GenerateRows(2, 50, 8, 2))
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 && (rec.Code < 400 || rec.Code > 599) {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
	})
}

// FuzzTenantHeader drives /v2/query with arbitrary tenant headers and
// cache modes: any header value must yield either a served query or a
// 4xx with the typed error envelope — never a panic, never a 5xx for a
// header problem.
func FuzzTenantHeader(f *testing.F) {
	f.Add("acme", "default")
	f.Add("", "bypass")
	f.Add("has space", "off")
	f.Add("semi;colon\x00", "")
	f.Add(strings.Repeat("x", 200), "nonsense")
	f.Add("ünïcode", "default")
	s := New(Config{})
	_ = s.Registry().Put("R1", 2, GenerateRows(2, 50, 8, 1))
	_ = s.Registry().Put("R2", 2, GenerateRows(2, 50, 8, 2))
	const body = `{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A"],"options":{"cache":%q}}`
	f.Fuzz(func(t *testing.T, tenant, mode string) {
		req := httptest.NewRequest("POST", "/v2/query", strings.NewReader(fmt.Sprintf(body, mode)))
		// Set the header raw: hostile clients are not limited to
		// canonical or even valid header values.
		req.Header["X-Mpc-Tenant"] = []string{tenant}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 && (rec.Code < 400 || rec.Code > 499) {
			t.Fatalf("status %d for tenant %q mode %q", rec.Code, tenant, mode)
		}
		if rec.Code != 200 {
			var env v2ErrorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Cause == "" {
				t.Fatalf("non-envelope error body %q for tenant %q", rec.Body.String(), tenant)
			}
		}
	})
}
