package server

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDecodeQueryRequest asserts the query decoder's contract over
// arbitrary bytes: it returns a validated request or an error — it must
// never panic, and anything it accepts must satisfy the documented
// bounds (so a hostile body cannot smuggle out-of-range parameters past
// validation into the engine).
func FuzzDecodeQueryRequest(f *testing.F) {
	f.Add(`{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A","C"]}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A"],"dataset":"ds"}],"servers":32,"strategy":"tree","semiring":"maxmin","workers":-1,"deadline_ms":100,"seed":7}`)
	f.Add(`{"relations":[]}`)
	f.Add(`{"relations":[{"name":"","attrs":[]}]}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`null`)
	f.Add(`[1,2,3]`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B","C"]}]}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"workers":9999999}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"deadline_ms":-5}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"strategy":"☃"}`)
	f.Add(strings.Repeat(`{"relations":`, 100))
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeQueryRequest(strings.NewReader(body))
		if err != nil {
			return // rejected input: the handler maps this to a 4xx
		}
		if len(req.Relations) == 0 || len(req.Relations) > maxRelations {
			t.Fatalf("accepted request with %d relations", len(req.Relations))
		}
		for _, rel := range req.Relations {
			if rel.Name == "" || len(rel.Attrs) < 1 || len(rel.Attrs) > 2 {
				t.Fatalf("accepted malformed relation %+v", rel)
			}
		}
		if req.Servers < 0 || req.Servers > maxServers ||
			req.Workers < -1 || req.Workers > maxQueryWorkers ||
			req.DeadlineMS < 0 || req.DeadlineMS > maxDeadlineMS {
			t.Fatalf("accepted out-of-range numerics %+v", req)
		}
		if !validStrategies[req.Strategy] || !validSemirings[req.Semiring] {
			t.Fatalf("accepted unknown strategy/semiring %+v", req)
		}
	})
}

// FuzzDecodeQueryRequestV2 is the same contract for the v2 decoder,
// plus the invariants of the faults block and the v2-specific rule that
// flat v1 knobs are unknown fields.
func FuzzDecodeQueryRequestV2(f *testing.F) {
	f.Add(`{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A","C"]}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A"]}],"options":{"servers":32,"workers":-1,"seed":7,"deadline_ms":100,"trace":true}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"faults":{"crash_prob":0.5,"drop_prob":0.2,"max_retries":8}}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"faults":{"crash_prob":1.5}}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":{"faults":{"max_retries":9999}}}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"servers":4}`)
	f.Add(`{"relations":[{"name":"R","attrs":["A","B"]}],"options":null}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeQueryRequestV2(strings.NewReader(body))
		if err != nil {
			return // rejected input: the handler maps this to a 4xx
		}
		if len(req.Relations) == 0 || len(req.Relations) > maxRelations {
			t.Fatalf("accepted request with %d relations", len(req.Relations))
		}
		if req.Servers < 0 || req.Servers > maxServers ||
			req.Workers < -1 || req.Workers > maxQueryWorkers ||
			req.DeadlineMS < 0 || req.DeadlineMS > maxDeadlineMS {
			t.Fatalf("accepted out-of-range numerics %+v", req)
		}
		if !validStrategies[req.Strategy] || !validSemirings[req.Semiring] {
			t.Fatalf("accepted unknown strategy/semiring %+v", req)
		}
		if fb := req.Faults; fb != nil {
			if fb.CrashProb < 0 || fb.CrashProb > 1 ||
				fb.DropProb < 0 || fb.DropProb > 1 ||
				fb.StragglerProb < 0 || fb.StragglerProb > 1 ||
				fb.StragglerDelay < 0 || fb.CrashRound < 0 ||
				fb.MaxRetries > maxFaultRetries || fb.StopAfter < 0 {
				t.Fatalf("accepted out-of-range fault block %+v", fb)
			}
			// Whatever the decoder accepts must construct a valid plane.
			if err := fb.Spec(req.Seed).Validate(); err != nil {
				t.Fatalf("accepted fault block fails engine validation: %v (%+v)", err, fb)
			}
		}
	})
}

// FuzzDecodeDatasetRequest is the same contract for the registration
// decoder.
func FuzzDecodeDatasetRequest(f *testing.F) {
	f.Add(`{"name":"R1","arity":2,"rows":[[2,0,7],[5,1,7]]}`)
	f.Add(`{"name":"E","arity":2,"generate":{"n":100,"dom":10,"seed":3}}`)
	f.Add(`{"name":"X","arity":1,"rows":[[1]]}`)
	f.Add(`{"arity":0}`)
	f.Add(`{"name":"X","arity":2,"rows":[[1,2,3]],"generate":{"n":1,"dom":1}}`)
	f.Add(`{"name":"X"}`)
	f.Add(`"str"`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeDatasetRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		if req.Name == "" || req.Arity < 1 || req.Arity > 2 {
			t.Fatalf("accepted malformed dataset request %+v", req)
		}
		for i, row := range req.Rows {
			if len(row) != req.Arity+1 {
				t.Fatalf("accepted row %d of width %d for arity %d", i, len(row), req.Arity)
			}
		}
		if g := req.Generate; g != nil && (g.N < 0 || g.N > maxGeneratedN || g.Dom < 1) {
			t.Fatalf("accepted out-of-range generator %+v", g)
		}
	})
}

// FuzzQueryEndpoint drives the whole handler with arbitrary bodies: the
// response must always be a well-formed HTTP status — 4xx for garbage —
// and the server must not panic regardless of input.
func FuzzQueryEndpoint(f *testing.F) {
	f.Add(`{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A","C"]}`)
	f.Add(`{"relations":[{"name":"R1","attrs":["A","A"]}]}`)
	f.Add(`{{{`)
	s := New(Config{})
	_ = s.Registry().Put("R1", 2, GenerateRows(2, 50, 8, 1))
	_ = s.Registry().Put("R2", 2, GenerateRows(2, 50, 8, 2))
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 && (rec.Code < 400 || rec.Code > 599) {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
	})
}
