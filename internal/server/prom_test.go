package server

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line: name, sorted label string, value.
type promSample struct {
	name   string
	labels string
	value  float64
}

// parseProm is a minimal Prometheus text-format (0.0.4) parser: enough to
// validate that the exposition is well-formed — every non-comment line is
// `name[{labels}] value`, every # TYPE names a seen metric family, label
// values are quoted. It returns the samples and the family → type map.
func parseProm(t *testing.T, text string) ([]promSample, map[string]string) {
	t.Helper()
	var samples []promSample
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					t.Fatalf("line %d: malformed TYPE %q", ln, line)
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln, line)
		}
		id, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln, valStr, err)
		}
		name, labels := id, ""
		if i := strings.IndexByte(id, '{'); i >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln, id)
			}
			name, labels = id[:i], id[i+1:len(id)-1]
			for _, pair := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln, pair)
				}
			}
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("line %d: invalid metric name %q", ln, name)
			}
		}
		samples = append(samples, promSample{name: name, labels: labels, value: val})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func findSample(samples []promSample, name, labels string) (float64, bool) {
	for _, s := range samples {
		if s.name == name && s.labels == labels {
			return s.value, true
		}
	}
	return 0, false
}

// TestMetricsPromFormat runs queries and checks /metrics?format=prom is a
// well-formed exposition whose counters and histograms reflect them.
func TestMetricsPromFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	for i := 0; i < 3; i++ {
		resp, out := postJSON(t, ts.URL+"/v1/query", fmt.Sprintf(matmulQuery, ""))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, out)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, sb.String())

	if v, ok := findSample(samples, "mpcd_queries_completed_total", ""); !ok || v != 3 {
		t.Fatalf("completed_total = %v (found %v), want 3", v, ok)
	}
	if types["mpcd_queries_completed_total"] != "counter" {
		t.Fatalf("completed_total type = %q", types["mpcd_queries_completed_total"])
	}
	if v, ok := findSample(samples, "mpcd_queries_by_engine_total", `engine="matmul"`); !ok || v != 3 {
		t.Fatalf("by_engine matmul = %v (found %v), want 3", v, ok)
	}

	// Histogram invariants for both families: cumulative non-decreasing
	// buckets, +Inf bucket equals _count, 3 observations recorded.
	for _, h := range []string{"mpcd_query_max_load", "mpcd_query_rounds"} {
		if types[h] != "histogram" {
			t.Fatalf("%s type = %q, want histogram", h, types[h])
		}
		prev, inf := -1.0, -1.0
		for _, s := range samples {
			if s.name != h+"_bucket" {
				continue
			}
			if s.value < prev {
				t.Fatalf("%s buckets not cumulative: %v after %v", h, s.value, prev)
			}
			prev = s.value
			if s.labels == `le="+Inf"` {
				inf = s.value
			}
		}
		count, ok := findSample(samples, h+"_count", "")
		if !ok || count != 3 {
			t.Fatalf("%s_count = %v (found %v), want 3", h, count, ok)
		}
		if inf != count {
			t.Fatalf("%s +Inf bucket %v != count %v", h, inf, count)
		}
		if sum, ok := findSample(samples, h+"_sum", ""); !ok || sum <= 0 {
			t.Fatalf("%s_sum = %v (found %v), want > 0", h, sum, ok)
		}
	}

	// The JSON view must still work alongside the prom view.
	jresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("JSON view content type = %q", ct)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
