package server

import (
	"encoding/json"
	"fmt"
	"io"
)

// Request decoding and validation, kept as pure functions over bytes so
// they can be fuzzed directly (FuzzDecodeQueryRequest): whatever bytes
// arrive, the decoder must return a request or an error — never panic —
// and every error maps to a 4xx at the handler.

// Decoded request size limits: generous for real use, small enough that a
// hostile body cannot balloon server memory before validation rejects it.
const (
	maxBodyBytes    = 64 << 20 // HTTP body cap, enforced by the handler
	maxRelations    = 64       // relations per query
	maxServers      = 1 << 14  // simulated cluster size
	maxGeneratedN   = 1 << 24  // rows a generator may produce
	maxDeadlineMS   = 1 << 31  // ~24 days; larger is surely a client bug
	maxQueryWorkers = 1 << 10  // OS workers one query may request
)

// DatasetRequest is the body of POST /v1/datasets. Exactly one of Rows or
// Generate must be set.
type DatasetRequest struct {
	// Name registers the dataset for reference from queries.
	Name string `json:"name"`
	// Arity is the tuple width (1 or 2 attributes).
	Arity int `json:"arity"`
	// Rows lists tuples as [annotation, v1, ..., vArity].
	Rows [][]int64 `json:"rows,omitempty"`
	// Generate synthesizes rows server-side instead of uploading them.
	Generate *GenerateSpec `json:"generate,omitempty"`
}

// GenerateSpec asks the server to synthesize a uniform-random dataset.
type GenerateSpec struct {
	N    int    `json:"n"`    // number of tuples
	Dom  int    `json:"dom"`  // values drawn uniformly from [0, dom)
	Seed uint64 `json:"seed"` // deterministic generation
}

// QueryRelation binds one relation symbol of the query to a registered
// dataset.
type QueryRelation struct {
	// Name is the relation symbol in the query.
	Name string `json:"name"`
	// Attrs names the relation's attributes (1 or 2); shared names are
	// join attributes.
	Attrs []string `json:"attrs"`
	// Dataset is the registered dataset backing this relation; defaults
	// to Name.
	Dataset string `json:"dataset,omitempty"`
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Relations []QueryRelation `json:"relations"`
	// GroupBy lists the output attributes; empty means full aggregation.
	GroupBy []string `json:"group_by,omitempty"`
	// Servers is the simulated cluster size p (default 16).
	Servers int `json:"servers,omitempty"`
	// Strategy is "auto" (default), "yannakakis" or "tree".
	Strategy string `json:"strategy,omitempty"`
	// Semiring is "ints" (default), "minplus", "maxplus", "maxmin" or
	// "bools" (annotation != 0 is true; results are true groups).
	Semiring string `json:"semiring,omitempty"`
	// Workers sizes this query's OS worker pool: 0 (the default)
	// inherits the ambient runtime — the service never installs one, so 0
	// runs serially; -1 = GOMAXPROCS; n > 0 = n workers. Per-query, not
	// process-global. Every value admits at least one unit of weight.
	Workers int `json:"workers,omitempty"`
	// DeadlineMS bounds execution wall time; the query is cancelled at
	// the next MPC round barrier after the deadline. 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Seed drives hash partitioning and estimators (reproducibility).
	Seed uint64 `json:"seed,omitempty"`
	// Trace returns the per-round load timeline ("rounds" in the
	// response). Off by default; tracing never changes results or stats.
	Trace bool `json:"trace,omitempty"`
	// Faults is the fault-injection block, settable only through the v2
	// request's options object ("json:-" keeps it out of the v1 wire
	// shape: a v1 body with a "faults" key is an unknown field and gets
	// 400). Both versions execute through this normalized struct.
	Faults *FaultBlock `json:"-"`
	// Cache is the cache-control mode ("", "default", "bypass", "off"),
	// settable only through the v2 options object; v1 always runs off.
	Cache string `json:"-"`
	// Graph turns the request into an iterated graph-analytics run over
	// the single bound edge relation. v2-only ("json:-" keeps it out of
	// the v1 wire shape, like Faults).
	Graph *GraphBlock `json:"-"`
	// Explain asks for the planner's explanation — class, ranked
	// candidates, chosen engine and why — in the response's "plan" block.
	// Settable only through the v2 options object; explaining never
	// changes rows or stats.
	Explain bool `json:"-"`
}

var validStrategies = map[string]bool{"": true, "auto": true, "yannakakis": true, "tree": true}
var validSemirings = map[string]bool{"": true, "ints": true, "minplus": true, "maxplus": true, "maxmin": true, "bools": true}

// DecodeDatasetRequest parses and validates a dataset registration body.
func DecodeDatasetRequest(r io.Reader) (*DatasetRequest, error) {
	var req DatasetRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if req.Name == "" {
		return nil, fmt.Errorf("name is required")
	}
	if req.Arity < 1 || req.Arity > 2 {
		return nil, fmt.Errorf("arity must be 1 or 2, got %d", req.Arity)
	}
	if req.Rows != nil && req.Generate != nil {
		return nil, fmt.Errorf("rows and generate are mutually exclusive")
	}
	if req.Rows == nil && req.Generate == nil {
		return nil, fmt.Errorf("one of rows or generate is required")
	}
	for i, row := range req.Rows {
		if len(row) != req.Arity+1 {
			return nil, fmt.Errorf("row %d: want [annot, %d values], got %d elements", i, req.Arity, len(row))
		}
	}
	if g := req.Generate; g != nil {
		if g.N < 0 || g.N > maxGeneratedN {
			return nil, fmt.Errorf("generate.n must be in [0, %d], got %d", maxGeneratedN, g.N)
		}
		if g.Dom < 1 {
			return nil, fmt.Errorf("generate.dom must be positive, got %d", g.Dom)
		}
	}
	return &req, nil
}

// DecodeQueryRequest parses and validates a v1 query body.
func DecodeQueryRequest(r io.Reader) (*QueryRequest, error) {
	var req QueryRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if err := validateQueryRequest(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// validateQueryRequest checks the normalized request shape shared by the
// v1 and v2 decoders.
func validateQueryRequest(req *QueryRequest) error {
	if len(req.Relations) == 0 {
		return fmt.Errorf("relations is required")
	}
	if len(req.Relations) > maxRelations {
		return fmt.Errorf("at most %d relations per query, got %d", maxRelations, len(req.Relations))
	}
	for i, rel := range req.Relations {
		if rel.Name == "" {
			return fmt.Errorf("relations[%d]: name is required", i)
		}
		if len(rel.Attrs) < 1 || len(rel.Attrs) > 2 {
			return fmt.Errorf("relations[%d]: want 1 or 2 attrs, got %d", i, len(rel.Attrs))
		}
		for j, a := range rel.Attrs {
			if a == "" {
				return fmt.Errorf("relations[%d].attrs[%d]: empty attribute name", i, j)
			}
		}
	}
	for i, a := range req.GroupBy {
		if a == "" {
			return fmt.Errorf("group_by[%d]: empty attribute name", i)
		}
	}
	if req.Servers < 0 || req.Servers > maxServers {
		return fmt.Errorf("servers must be in [0, %d], got %d", maxServers, req.Servers)
	}
	if !validStrategies[req.Strategy] {
		return fmt.Errorf("unknown strategy %q (want auto, yannakakis or tree)", req.Strategy)
	}
	if !validSemirings[req.Semiring] {
		return fmt.Errorf("unknown semiring %q (want ints, minplus, maxplus, maxmin or bools)", req.Semiring)
	}
	if req.Workers < -1 || req.Workers > maxQueryWorkers {
		return fmt.Errorf("workers must be in [-1, %d], got %d", maxQueryWorkers, req.Workers)
	}
	if req.DeadlineMS < 0 || req.DeadlineMS > maxDeadlineMS {
		return fmt.Errorf("deadline_ms must be in [0, %d], got %d", maxDeadlineMS, req.DeadlineMS)
	}
	if req.Faults != nil {
		if err := req.Faults.validate(); err != nil {
			return err
		}
	}
	if !validCacheModes[req.Cache] {
		return fmt.Errorf("unknown cache mode %q (want default, bypass or off)", req.Cache)
	}
	if g := req.Graph; g != nil {
		if err := g.validate(); err != nil {
			return err
		}
		// A graph run is one driver over one edge relation; the
		// join-aggregate knobs do not compose with it.
		if len(req.Relations) != 1 {
			return fmt.Errorf("graph queries bind exactly one edge relation, got %d", len(req.Relations))
		}
		if len(req.Relations[0].Attrs) != 2 {
			return fmt.Errorf("graph queries need a binary edge relation, got %d attrs", len(req.Relations[0].Attrs))
		}
		if len(req.GroupBy) != 0 {
			return fmt.Errorf("graph queries do not take group_by")
		}
		if req.Strategy != "" {
			return fmt.Errorf("graph queries do not take a strategy (the %s driver is the engine)", g.Kind)
		}
		if req.Semiring != "" {
			return fmt.Errorf("graph queries do not take a semiring (the %s driver fixes it)", g.Kind)
		}
		if req.Explain {
			return fmt.Errorf("explain does not apply to graph queries (the %s driver is the plan)", g.Kind)
		}
	}
	return nil
}
