package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// registerMatMul registers two small relations forming a matrix
// multiplication instance with a known answer:
//
//	R1 = {(a=0,b=7):2, (a=1,b=7):5}, R2 = {(b=7,c=1):3}
//	∑_B R1 ⋈ R2 grouped by (A, C) = {(0,1):6, (1,1):15}
func registerMatMul(t *testing.T, base string) {
	t.Helper()
	for name, body := range map[string]string{
		"R1": `{"name":"R1","arity":2,"rows":[[2,0,7],[5,1,7]]}`,
		"R2": `{"name":"R2","arity":2,"rows":[[3,7,1]]}`,
	} {
		resp, out := postJSON(t, base+"/v1/datasets", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %d %s", name, resp.StatusCode, out)
		}
	}
}

const matmulQuery = `{"relations":[{"name":"R1","attrs":["A","B"]},{"name":"R2","attrs":["B","C"]}],"group_by":["A","C"]%s}`

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	// New queries are shed while draining.
	registerResp, _ := postJSON(t, ts.URL+"/v1/datasets", `{"name":"X","arity":1,"rows":[[1,0]]}`)
	if registerResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining register = %d, want 503", registerResp.StatusCode)
	}
	qResp, _ := postJSON(t, ts.URL+"/v1/query", fmt.Sprintf(matmulQuery, ""))
	if qResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining query = %d, want 503", qResp.StatusCode)
	}
}

func TestQueryMatMulAllSemirings(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	cases := []struct {
		semiring string
		want     [][]any // [annot, a, c]
	}{
		{"ints", [][]any{{6.0, 0.0, 1.0}, {15.0, 1.0, 1.0}}},
		{"minplus", [][]any{{5.0, 0.0, 1.0}, {8.0, 1.0, 1.0}}}, // min over B of (2+3) / (5+3)
		{"maxplus", [][]any{{5.0, 0.0, 1.0}, {8.0, 1.0, 1.0}}}, // single path each
		{"maxmin", [][]any{{2.0, 0.0, 1.0}, {3.0, 1.0, 1.0}}},  // max over paths of min(annots)
		{"bools", [][]any{{true, 0.0, 1.0}, {true, 1.0, 1.0}}}, // reachability
	}
	for _, c := range cases {
		body := fmt.Sprintf(matmulQuery, `,"semiring":"`+c.semiring+`"`)
		resp, out := postJSON(t, ts.URL+"/v1/query", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", c.semiring, resp.StatusCode, out)
		}
		var qr struct {
			Attrs  []string `json:"attrs"`
			Rows   [][]any  `json:"rows"`
			Class  string   `json:"class"`
			Engine string   `json:"engine"`
			Stats  struct {
				Rounds int
			} `json:"stats"`
		}
		if err := json.Unmarshal(out, &qr); err != nil {
			t.Fatalf("%s: %v in %s", c.semiring, err, out)
		}
		if len(qr.Attrs) != 2 || qr.Attrs[0] != "A" || qr.Attrs[1] != "C" {
			t.Fatalf("%s: attrs = %v", c.semiring, qr.Attrs)
		}
		if qr.Class != "matmul" || qr.Engine != "matmul" {
			t.Fatalf("%s: class/engine = %s/%s", c.semiring, qr.Class, qr.Engine)
		}
		if qr.Stats.Rounds == 0 {
			t.Fatalf("%s: no rounds metered", c.semiring)
		}
		if fmt.Sprint(qr.Rows) != fmt.Sprint(c.want) {
			t.Fatalf("%s: rows = %v, want %v", c.semiring, qr.Rows, c.want)
		}
	}
}

func TestQueryStrategiesAgree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	var bodies []string
	for _, strat := range []string{"auto", "yannakakis", "tree"} {
		body := fmt.Sprintf(matmulQuery, `,"strategy":"`+strat+`"`)
		resp, out := postJSON(t, ts.URL+"/v1/query", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", strat, resp.StatusCode, out)
		}
		var qr struct {
			Rows [][]any `json:"rows"`
		}
		if err := json.Unmarshal(out, &qr); err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, fmt.Sprint(qr.Rows))
	}
	if bodies[0] != bodies[1] || bodies[1] != bodies[2] {
		t.Fatalf("strategies disagree: %v", bodies)
	}
}

// TestQueryDeterministicAcrossWorkers pins the service-level determinism
// contract: the same query with different per-request worker counts must
// return byte-identical rows and Stats.
func TestQueryDeterministicAcrossWorkers(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 16})
	resp, out := postJSON(t, ts.URL+"/v1/datasets",
		`{"name":"E","arity":2,"generate":{"n":2000,"dom":40,"seed":11}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, out)
	}
	strip := func(b []byte) string {
		var qr map[string]json.RawMessage
		if err := json.Unmarshal(b, &qr); err != nil {
			t.Fatalf("%v in %s", err, b)
		}
		// wall_ns legitimately differs between runs.
		delete(qr, "wall_ns")
		keys, _ := json.Marshal(qr)
		return string(keys)
	}
	var got []string
	for _, workers := range []int{0, 1, 2, -1} {
		body := fmt.Sprintf(
			`{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"E"},{"name":"R2","attrs":["B","C"],"dataset":"E"}],"group_by":["A"],"workers":%d,"seed":3}`,
			workers)
		resp, out := postJSON(t, ts.URL+"/v1/query", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: %d %s", workers, resp.StatusCode, out)
		}
		got = append(got, strip(out))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("worker count changed the response:\n%s\nvs\n%s", got[0], got[i])
		}
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"relations":`, http.StatusBadRequest},
		{"no relations", `{}`, http.StatusBadRequest},
		{"unknown dataset", `{"relations":[{"name":"Nope","attrs":["A","B"]}]}`, http.StatusNotFound},
		{"arity mismatch", `{"relations":[{"name":"R1","attrs":["A"]}]}`, http.StatusBadRequest},
		{"bad strategy", fmt.Sprintf(matmulQuery, `,"strategy":"magic"`), http.StatusBadRequest},
		{"bad semiring", fmt.Sprintf(matmulQuery, `,"semiring":"floats"`), http.StatusBadRequest},
		{"duplicate attr", `{"relations":[{"name":"R1","attrs":["A","A"]}]}`, http.StatusBadRequest},
		{"unknown field", `{"relations":[{"name":"R1","attrs":["A","B"]}],"bogus":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/query", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d (%s), want %d", c.name, resp.StatusCode, out, c.want)
		}
	}
}

func TestDatasetErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"malformed", `not json`},
		{"no name", `{"arity":2,"rows":[]}`},
		{"bad arity", `{"name":"X","arity":3,"rows":[]}`},
		{"row width", `{"name":"X","arity":2,"rows":[[1,2]]}`},
		{"rows and generate", `{"name":"X","arity":2,"rows":[[1,2,3]],"generate":{"n":1,"dom":1}}`},
		{"neither", `{"name":"X","arity":2}`},
		{"bad dom", `{"name":"X","arity":2,"generate":{"n":10,"dom":0}}`},
	}
	for _, c := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/datasets", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, resp.StatusCode)
		}
	}
}

// TestQueryDeadlineCancels registers a larger instance and issues a query
// with a 1ms deadline: the execution must be cancelled (504) and the
// cancellation must show up in /metrics.
func TestQueryDeadlineCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, out := postJSON(t, ts.URL+"/v1/datasets",
		`{"name":"Big","arity":2,"generate":{"n":300000,"dom":500,"seed":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, out)
	}
	body := `{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"Big"},{"name":"R2","attrs":["B","C"],"dataset":"Big"}],"group_by":["A","C"],"deadline_ms":1}`
	resp, out = postJSON(t, ts.URL+"/v1/query", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline query = %d (%s), want 504", resp.StatusCode, out)
	}
	snap := s.Metrics().Snapshot()
	if snap.Cancelled != 1 {
		t.Fatalf("metrics cancelled = %d, want 1", snap.Cancelled)
	}
	if len(snap.Cancel) != 1 || snap.Cancel[0].Name != "deadline" {
		t.Fatalf("cancel causes = %v, want [deadline]", snap.Cancel)
	}
}

// TestConcurrentQueriesAndMetrics fires many concurrent queries and
// checks they all succeed with identical answers and the metrics add up.
func TestConcurrentQueriesAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 8, MaxQueue: 64})
	registerMatMul(t, ts.URL)
	const n = 16
	results := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(matmulQuery, fmt.Sprintf(`,"workers":%d`, i%3))
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				results[i] = "error: " + err.Error()
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			var qr struct {
				Rows [][]any `json:"rows"`
			}
			if resp.StatusCode != http.StatusOK {
				results[i] = fmt.Sprintf("status %d: %s", resp.StatusCode, buf.String())
				return
			}
			if err := json.Unmarshal(buf.Bytes(), &qr); err != nil {
				results[i] = "decode: " + err.Error()
				return
			}
			results[i] = fmt.Sprint(qr.Rows)
		}(i)
	}
	wg.Wait()
	want := "[[6 0 1] [15 1 1]]"
	for i, r := range results {
		if r != want {
			t.Errorf("query %d: %s, want %s", i, r, want)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed != n {
		t.Errorf("completed = %d, want %d", snap.Completed, n)
	}
	if snap.InFlight != 0 || snap.Queued != 0 {
		t.Errorf("in flight/queued = %d/%d after drain, want 0/0", snap.InFlight, snap.Queued)
	}
	if len(snap.ByEngine) != 1 || snap.ByEngine[0].Name != "matmul" || snap.ByEngine[0].Count != n {
		t.Errorf("by_engine = %v, want matmul:%d", snap.ByEngine, n)
	}
	if snap.SumLoad == 0 || snap.Rounds == 0 {
		t.Errorf("cumulative cost not metered: %+v", snap)
	}
}

func TestListDatasets(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)
	resp, out := postJSON(t, ts.URL+"/v1/datasets", `{"name":"Z","arity":1,"rows":[[1,5]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, out)
	}
	getResp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var body struct {
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(getResp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(body.Datasets) != "[R1 R2 Z]" {
		t.Fatalf("datasets = %v", body.Datasets)
	}
}
