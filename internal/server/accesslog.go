package server

import (
	"fmt"
	"net/http"
)

// TenantHeader names the request header carrying the tenant identity.
// Absent means DefaultTenant: single-tenant deployments never need to set
// it, and a proxy that authenticates clients injects it on their behalf.
const TenantHeader = "X-MPC-Tenant"

// DefaultTenant is the tenant of requests without a TenantHeader.
const DefaultTenant = "default"

// maxTenantLen bounds the tenant identifier; tenants become map keys and
// metric labels, so a hostile header must not be an unbounded-cardinality
// amplification knob.
const maxTenantLen = 64

// tenantFromRequest resolves and validates the request's tenant. The
// identifier charset is deliberately narrow — it is embedded verbatim in
// metric labels and access-log lines.
func tenantFromRequest(r *http.Request) (string, error) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		return DefaultTenant, nil
	}
	if len(tenant) > maxTenantLen {
		return "", fmt.Errorf("%s: tenant must be at most %d characters, got %d", TenantHeader, maxTenantLen, len(tenant))
	}
	for _, c := range []byte(tenant) {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("%s: tenant may contain only letters, digits, '.', '_' and '-'", TenantHeader)
		}
	}
	return tenant, nil
}

// AccessEntry is one structured per-query access-log record: everything
// an operator needs to answer "what happened to that query" — who sent
// it, what data version it saw, how it was served (engine, cache,
// coalescing), how long it waited and ran, and how it ended. mpcd's
// -log-format json emits one JSON line per query from these.
type AccessEntry struct {
	// Path is the query endpoint ("/v1/query", "/v2/query").
	Path string `json:"path"`
	// Tenant is the admitted tenant (DefaultTenant when no header).
	Tenant string `json:"tenant"`
	// Status is the HTTP status written; Cause is the machine-readable
	// error cause for non-200 outcomes ("" on success).
	Status int    `json:"status"`
	Cause  string `json:"cause,omitempty"`
	// Engine is the algorithm that ran (or would have run) the query.
	Engine string `json:"engine,omitempty"`
	// DatasetVersion is the registry version the query's snapshot pinned.
	DatasetVersion uint64 `json:"dataset_version,omitempty"`
	// CacheHit is true when the result came from the result cache without
	// executing; Coalesced is true when it came from joining another
	// request's in-flight execution.
	CacheHit  bool `json:"cache_hit"`
	Coalesced bool `json:"coalesced,omitempty"`
	// QueueNS is time spent waiting in the admission queue; WallNS is the
	// request's total wall time, both in nanoseconds.
	QueueNS int64 `json:"queue_ns"`
	WallNS  int64 `json:"wall_ns"`
}
