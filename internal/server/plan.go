package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/planner"
)

// plan.go is the serving tier's side of the cost-based planner: the
// pre-execution plan resolution that lets result-cache keys carry the
// *resolved* engine (so an auto-planned query whose planner decision
// flips with the data never cross-serves), a bounded plan cache so the
// resolution is close to free for repeated queries, and the /v2/plan
// dry-run endpoint that explains a query without executing it.

// bindFail classifies a relation-binding failure for the handler.
type bindFail struct {
	status int
	cause  string
	msg    string
}

// bindQuery resolves the request's relation → dataset bindings against
// one registry snapshot, building the hypergraph query and the dataset
// map the execution (or planning) runs on. Shared by /v1/query, /v2/query
// and /v2/plan so all three bind — and therefore plan — identically.
func bindQuery(req *QueryRequest, view *RegistryView) (*hypergraph.Query, map[string]*Dataset, *bindFail) {
	q := &hypergraph.Query{}
	insts := make(map[string]*Dataset, len(req.Relations))
	for _, rel := range req.Relations {
		dsName := rel.Dataset
		if dsName == "" {
			dsName = rel.Name
		}
		ds, ok := view.Get(dsName)
		if !ok {
			return nil, nil, &bindFail{http.StatusNotFound, "not_found",
				fmt.Sprintf("dataset %q not registered", dsName)}
		}
		if ds.Arity != len(rel.Attrs) {
			return nil, nil, &bindFail{http.StatusBadRequest, "bad_request",
				fmt.Sprintf("relation %q has %d attrs but dataset %q has arity %d",
					rel.Name, len(rel.Attrs), dsName, ds.Arity)}
		}
		attrs := make([]hypergraph.Attr, len(rel.Attrs))
		for i, a := range rel.Attrs {
			attrs[i] = hypergraph.Attr(a)
		}
		q.Edges = append(q.Edges, hypergraph.Edge{Name: rel.Name, Attrs: attrs})
		insts[rel.Name] = ds
	}
	for _, a := range req.GroupBy {
		q.Output = append(q.Output, hypergraph.Attr(a))
	}
	return q, insts, nil
}

// resolveQueryPlan runs the cost-based planner for a bound query without
// executing it. Plans are keyed like results (dataset versions, canonical
// options), so a registration or option change replans; the annotation
// semiring is irrelevant to planning (only sizes matter), so one plan
// serves every semiring of the same shape.
func (s *Server) resolveQueryPlan(ctx context.Context, req *QueryRequest, q *hypergraph.Query, insts map[string]*Dataset, o core.Options) (*planner.Plan, error) {
	key := cacheKey(req, insts, o) + ";plan"
	if s.cacheOn {
		if pl, ok := s.plans.Get(key); ok {
			return pl, nil
		}
	}
	inst := make(db.Instance[int64], len(insts))
	for name, ds := range insts {
		rel := newRelation[int64](q, name)
		rel.Rows = ds.Rows
		inst[name] = rel
	}
	// Validate here so request-shape problems classify as client errors;
	// whatever PlanInstance then fails on (beyond cancellation) is
	// internal.
	if err := q.Validate(); err != nil {
		return nil, &clientError{err}
	}
	if err := db.Validate(q, inst); err != nil {
		return nil, &clientError{err}
	}
	pl, err := core.PlanInstance(ctx, q, inst, o)
	if err != nil {
		return nil, err
	}
	if s.cacheOn {
		s.plans.Put(key, cacheTags(req), &pl)
	}
	return &pl, nil
}

// failPlan maps a planning error onto the response and the metrics;
// planning failures classify exactly like execution failures.
func (s *Server) failPlan(ctx context.Context, fail func(status int, cause, format string, args ...any), err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.met.QueryCancelled("deadline")
		fail(http.StatusGatewayTimeout, "deadline", "deadline exceeded")
	case errors.Is(err, context.Canceled):
		s.met.QueryCancelled(s.cancelCause(ctx))
		fail(http.StatusServiceUnavailable, "drain", "cancelled (%s)", s.disconnectCause())
	case isClientError(err):
		s.met.QueryFailedClient()
		fail(http.StatusBadRequest, "bad_request", "%v", err)
	default:
		s.met.QueryFailedInternal()
		fail(http.StatusInternalServerError, "internal", "planning failed: %v", err)
	}
}

// PlanResponse is the body of a successful POST /v2/plan: the dry-run
// plan for a query, computed from the registered datasets and the
// estimate-only pre-pass, without executing the query.
type PlanResponse struct {
	// Class is the query's structural class.
	Class string `json:"class"`
	// Plan is the full ranked plan; Plan.Chosen is the engine an
	// identical /v2/query would run (MeasuredLoad stays 0 — nothing ran).
	Plan *planner.Plan `json:"plan"`
	// DatasetVersion is the registry version the plan's snapshot pinned.
	DatasetVersion uint64 `json:"dataset_version"`
	// WallNS is the planning wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
}

// handlePlanV2 is the dry-run planning endpoint: it accepts the /v2/query
// request shape, resolves the same plan the query endpoint would, and
// returns it without admitting or executing anything. The pre-pass runs
// outside admission control on purpose — it is estimate-sized work, not
// query-sized work.
func (s *Server) handlePlanV2(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	entry := AccessEntry{Path: r.URL.Path, Tenant: DefaultTenant}
	defer func() {
		if s.cfg.AccessLog != nil {
			entry.WallNS = time.Since(reqStart).Nanoseconds()
			s.cfg.AccessLog(entry)
		}
	}()
	fail := func(status int, cause, format string, args ...any) {
		entry.Status, entry.Cause = status, cause
		apiV2.writeError(w, status, cause, format, args...)
	}

	if s.Draining() {
		s.met.QueryRejected()
		fail(http.StatusServiceUnavailable, "drain", "draining")
		return
	}
	tenant, err := tenantFromRequest(r)
	if err != nil {
		fail(http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	entry.Tenant = tenant

	req, err := DecodeQueryRequestV2(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		fail(http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if req.Graph != nil {
		fail(http.StatusBadRequest, "bad_request", "graph queries are not planned: the %s driver is the engine", req.Graph.Kind)
		return
	}

	view := s.reg.View()
	q, insts, bf := bindQuery(req, view)
	if bf != nil {
		fail(bf.status, bf.cause, "%s", bf.msg)
		return
	}
	entry.DatasetVersion = view.Version()

	o := core.Options{
		Servers:   req.Servers,
		Seed:      req.Seed,
		Workers:   req.Workers,
		Transport: s.cfg.Transport,
	}
	switch req.Strategy {
	case "yannakakis":
		o.Strategy = core.StrategyYannakakis
	case "tree":
		o.Strategy = core.StrategyTree
	}

	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	defer cancel()

	pl, err := s.resolveQueryPlan(ctx, req, q, insts, o)
	if err != nil {
		s.failPlan(ctx, fail, err)
		return
	}
	entry.Engine = pl.Chosen
	entry.Status = http.StatusOK
	s.met.PlanEngine(pl.Chosen)
	s.met.TenantServed(tenant)
	writeJSON(w, http.StatusOK, PlanResponse{
		Class:          pl.Class,
		Plan:           pl,
		DatasetVersion: view.Version(),
		WallNS:         time.Since(reqStart).Nanoseconds(),
	})
}
