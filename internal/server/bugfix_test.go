package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/semiring"
)

// registerBig registers a generated dataset large enough that a matmul
// query over it holds the admission capacity for a while.
func registerBig(t *testing.T, base string) {
	t.Helper()
	resp, out := postJSON(t, base+"/v1/datasets",
		`{"name":"Big","arity":2,"generate":{"n":400000,"dom":500,"seed":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, out)
	}
}

const bigQuery = `{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"Big"},{"name":"R2","attrs":["B","C"],"dataset":"Big"}],"group_by":["A","C"]%s}`

// occupyCapacity starts a slow query in the background and returns once it
// is executing (holding admission weight). The returned func cancels the
// query (its full run would take far too long for a test) and waits for
// the handler to release the capacity.
func occupyCapacity(t *testing.T, s *Server, ts string) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts+"/v1/query",
			strings.NewReader(fmt.Sprintf(bigQuery, "")))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Snapshot().InFlight == 0 {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("slow query never started executing")
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		cancel()
		<-done
		deadline := time.Now().Add(10 * time.Second)
		for s.Metrics().Snapshot().InFlight > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
}

// TestWorkersZeroFloodIsAdmissionControlled is the regression test for the
// admission-bypass bug: workers:0 (the default) must hold ≥ 1 unit of
// weight, so a flood of default queries against a full server is queued
// and shed — not all admitted past the capacity.
func TestWorkersZeroFloodIsAdmissionControlled(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 1, MaxQueue: 1})
	registerMatMul(t, ts.URL)
	registerBig(t, ts.URL)

	wait := occupyCapacity(t, s, ts.URL)

	// Capacity 1 is held and the queue holds 1: of these four workers:0
	// queries exactly one can queue; the rest must be shed with 429.
	const flood = 4
	codes := make([]int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(matmulQuery, `,"workers":0`)
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until the shed requests have bounced, then free the capacity so
	// the one queued query can run its (small) matmul and return.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Snapshot().Rejected < flood-1 {
		if time.Now().After(deadline) {
			t.Fatalf("flood not shed: %+v", s.Metrics().Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	wait()
	wg.Wait()

	shed, ok := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK:
			ok++
		}
	}
	if shed != flood-1 || ok != 1 {
		t.Fatalf("flood of workers:0 queries bypassed admission: codes %v, want %d shed + 1 queued-then-run", codes, flood-1)
	}
	if got := s.Metrics().Snapshot().Rejected; got != int64(shed) {
		t.Fatalf("rejected = %d, want %d", got, shed)
	}
}

// TestDeadlineCoversQueueWait is the regression test for the
// deadline-after-Acquire bug: a query whose deadline expires while it
// waits in the admission queue must come back 504 with cause "deadline",
// not run anyway once capacity frees up.
func TestDeadlineCoversQueueWait(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 1, MaxQueue: 4})
	registerMatMul(t, ts.URL)
	registerBig(t, ts.URL)

	wait := occupyCapacity(t, s, ts.URL)

	start := time.Now()
	body := fmt.Sprintf(matmulQuery, `,"deadline_ms":100`)
	resp, out := postJSON(t, ts.URL+"/v1/query", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline query = %d (%s), want 504", resp.StatusCode, out)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not fire in the queue (took %v)", elapsed)
	}
	snap := s.Metrics().Snapshot()
	found := false
	for _, c := range snap.Cancel {
		if c.Name == "deadline" && c.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cancel causes = %v, want deadline ≥ 1", snap.Cancel)
	}
	wait()
}

// TestErrorClassification is the regression test for the error-status
// misclassification bug: request-side failures are clientError (400,
// failed_client) while everything else from the engine is internal (500,
// failed_internal).
func TestErrorClassification(t *testing.T) {
	// The wrapper and its detection, including through fmt.Errorf chains.
	base := errors.New("boom")
	if !isClientError(&clientError{base}) {
		t.Fatal("clientError not detected")
	}
	if !isClientError(fmt.Errorf("context: %w", &clientError{base})) {
		t.Fatal("wrapped clientError not detected")
	}
	if isClientError(base) || isClientError(nil) {
		t.Fatal("plain error misclassified as client error")
	}

	// An unknown semiring surfaces as a client error from execute.
	s := New(Config{})
	q := &hypergraph.Query{Edges: []hypergraph.Edge{{Name: "R", Attrs: []hypergraph.Attr{"A", "B"}}}}
	_, err := s.execute(context.Background(), &QueryRequest{Semiring: "floats"}, q,
		map[string]*Dataset{}, core.Options{})
	if !isClientError(err) {
		t.Fatalf("unknown semiring: err = %v, want client error", err)
	}

	// A query that fails validation inside runTyped is a client error.
	badQ := &hypergraph.Query{Edges: []hypergraph.Edge{{Name: "R", Attrs: []hypergraph.Attr{"A", "A"}}}}
	_, err = runTyped[int64](context.Background(), semiring.IntSumProd{}, badQ,
		db.Instance[int64]{}, core.Options{}, func(w int64) any { return w })
	if !isClientError(err) {
		t.Fatalf("invalid query: err = %v, want client error", err)
	}

	// The metrics split the two failure kinds and keep the legacy total.
	m := NewMetrics()
	m.QueryFailedClient()
	m.QueryFailedClient()
	m.QueryFailedInternal()
	snap := m.Snapshot()
	if snap.FailedClient != 2 || snap.FailedInternal != 1 || snap.Failed != 3 {
		t.Fatalf("failed counters = client %d internal %d total %d, want 2/1/3",
			snap.FailedClient, snap.FailedInternal, snap.Failed)
	}
}

// TestDrainCancellationCause is the regression test for the mislabeled
// drain cause: a query cancelled while the server drains must be recorded
// under cause "drain", not "client".
func TestDrainCancellationCause(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 4})
	registerBig(t, ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query",
			strings.NewReader(fmt.Sprintf(bigQuery, "")))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Snapshot().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started executing")
		}
		time.Sleep(time.Millisecond)
	}

	// The daemon's drain path: flip the flag, then cancel in-flight work.
	s.SetDraining(true)
	cancel()
	<-done

	deadline = time.Now().Add(10 * time.Second)
	for {
		snap := s.Metrics().Snapshot()
		var drain, client int64
		for _, c := range snap.Cancel {
			switch c.Name {
			case "drain":
				drain = c.Count
			case "client":
				client = c.Count
			}
		}
		if drain >= 1 {
			if client != 0 {
				t.Fatalf("drain cancellation also recorded as client: %v", snap.Cancel)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel causes = %v, want drain ≥ 1", snap.Cancel)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueryTrace: "trace": true returns a per-round timeline and leaves
// results and stats identical to an untraced run.
func TestQueryTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	respPlain, outPlain := postJSON(t, ts.URL+"/v1/query", fmt.Sprintf(matmulQuery, ""))
	respTraced, outTraced := postJSON(t, ts.URL+"/v1/query", fmt.Sprintf(matmulQuery, `,"trace":true`))
	if respPlain.StatusCode != http.StatusOK || respTraced.StatusCode != http.StatusOK {
		t.Fatalf("status = %d / %d", respPlain.StatusCode, respTraced.StatusCode)
	}

	type qr struct {
		Rows   [][]any `json:"rows"`
		Stats  struct {
			Rounds  int   `json:"rounds"`
			MaxLoad int64 `json:"max_load"`
		} `json:"stats"`
		Rounds []struct {
			Round   int    `json:"round"`
			Op      string `json:"op"`
			MaxLoad int64  `json:"max_load"`
			Servers int    `json:"servers"`
		} `json:"rounds"`
	}
	var plain, traced qr
	if err := json.Unmarshal(outPlain, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(outTraced, &traced); err != nil {
		t.Fatal(err)
	}
	if len(plain.Rounds) != 0 {
		t.Fatalf("untraced response has rounds: %+v", plain.Rounds)
	}
	if len(traced.Rounds) == 0 {
		t.Fatal("traced response has no rounds")
	}
	if fmt.Sprint(plain.Rows) != fmt.Sprint(traced.Rows) || plain.Stats != traced.Stats {
		t.Fatalf("tracing changed the result:\n%s\nvs\n%s", outPlain, outTraced)
	}
	for i, rt := range traced.Rounds {
		if rt.Round != i+1 || rt.Op == "" || rt.Servers <= 0 {
			t.Fatalf("malformed round %d: %+v", i+1, rt)
		}
	}
}
