package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

// Graph-query surface tests: the v2 "graph" block end to end through
// HTTP, plus the cache-identity regression for faulted vs clean runs.

// registerChainGraph registers a 5-edge weighted chain 0→1→2→3→4→5 as
// edge relation E (annotation = weight i+1), so BFS levels and SSSP
// distances have closed forms.
func registerChainGraph(t *testing.T, base string) {
	t.Helper()
	rows := ""
	for i := 0; i < 5; i++ {
		if i > 0 {
			rows += ","
		}
		rows += fmt.Sprintf("[%d,%d,%d]", i+1, i, i+1)
	}
	body := fmt.Sprintf(`{"name":"E","arity":2,"rows":[%s]}`, rows)
	resp, out := postJSON(t, base+"/v1/datasets", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register E: %d %s", resp.StatusCode, out)
	}
}

const graphQueryV2 = `{"relations":[{"name":"E","attrs":["S","D"]}],"graph":%s%s}`

func decodeResp(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return m
}

func TestGraphQueryBFS(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerChainGraph(t, ts.URL)

	body := fmt.Sprintf(graphQueryV2, `{"kind":"bfs","source":0}`, "")
	resp, out := postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bfs query = %d %s", resp.StatusCode, out)
	}
	m := decodeResp(t, out)
	if m["engine"] != "spmv-bfs" || m["class"] != "graph" {
		t.Fatalf("engine/class = %v/%v, want spmv-bfs/graph", m["engine"], m["class"])
	}
	if conv, ok := m["converged"].(bool); !ok || !conv {
		t.Fatalf("converged = %v, want true", m["converged"])
	}
	if n, _ := m["iterations"].([]any); len(n) == 0 {
		t.Fatalf("no per-iteration stats: %s", out)
	}
	// Levels on a 6-chain: vertex i at level i.
	want := [][]any{}
	for i := 0; i < 6; i++ {
		want = append(want, []any{float64(i), float64(i)})
	}
	rows, _ := m["rows"].([]any)
	got := [][]any{}
	for _, r := range rows {
		got = append(got, r.([]any))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bfs rows = %v, want %v", got, want)
	}
	if attrs, _ := m["attrs"].([]any); len(attrs) != 1 || attrs[0] != "vertex" {
		t.Fatalf("attrs = %v, want [vertex]", m["attrs"])
	}
}

func TestGraphQuerySSSPAndPageRank(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerChainGraph(t, ts.URL)

	body := fmt.Sprintf(graphQueryV2, `{"kind":"sssp","source":0}`, "")
	resp, out := postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sssp query = %d %s", resp.StatusCode, out)
	}
	m := decodeResp(t, out)
	if m["engine"] != "spmv-sssp" {
		t.Fatalf("engine = %v", m["engine"])
	}
	// Distances on the weighted chain: dist(i) = 1+2+...+i.
	rows, _ := m["rows"].([]any)
	if len(rows) != 6 {
		t.Fatalf("sssp rows = %v", rows)
	}
	wantDist := []float64{0, 1, 3, 6, 10, 15}
	for i, r := range rows {
		row := r.([]any)
		if row[0] != wantDist[i] || row[1] != float64(i) {
			t.Fatalf("sssp row %d = %v, want [%v %d]", i, row, wantDist[i], i)
		}
	}

	body = fmt.Sprintf(graphQueryV2, `{"kind":"pagerank","damping":0.9,"tol":1e-8}`, "")
	resp, out = postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pagerank query = %d %s", resp.StatusCode, out)
	}
	m = decodeResp(t, out)
	if m["engine"] != "spmv-pagerank" {
		t.Fatalf("engine = %v", m["engine"])
	}
	if conv, ok := m["converged"].(bool); !ok || !conv {
		t.Fatalf("pagerank converged = %v", m["converged"])
	}
	var sum float64
	for _, r := range m["rows"].([]any) {
		sum += r.([]any)[0].(float64)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("pagerank scores sum to %v", sum)
	}
}

func TestGraphQueryTraceAndBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerChainGraph(t, ts.URL)

	body := fmt.Sprintf(graphQueryV2, `{"kind":"bfs","source":0,"max_iters":2}`,
		`,"options":{"trace":true}`)
	resp, out := postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted query = %d %s", resp.StatusCode, out)
	}
	m := decodeResp(t, out)
	if conv, ok := m["converged"].(bool); !ok || conv {
		t.Fatalf("budget-cut run converged = %v, want false", m["converged"])
	}
	if iters, _ := m["iterations"].([]any); len(iters) != 2 {
		t.Fatalf("iterations = %v, want 2", m["iterations"])
	}
	rounds, _ := m["rounds"].([]any)
	if len(rounds) == 0 {
		t.Fatalf("traced graph query has no rounds: %s", out)
	}
	seen := false
	for _, r := range rounds {
		if op, _ := r.(map[string]any)["op"].(string); op == "iter0.partials" {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("trace lacks per-iteration exchange labels: %v", rounds)
	}
}

func TestGraphQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerChainGraph(t, ts.URL)
	registerMatMul(t, ts.URL)

	for name, body := range map[string]string{
		"unknown kind":   fmt.Sprintf(graphQueryV2, `{"kind":"wcc"}`, ""),
		"bfs + damping":  fmt.Sprintf(graphQueryV2, `{"kind":"bfs","damping":0.5}`, ""),
		"pagerank + src": fmt.Sprintf(graphQueryV2, `{"kind":"pagerank","source":3}`, ""),
		"iters over cap": fmt.Sprintf(graphQueryV2, `{"kind":"bfs","max_iters":65536}`, ""),
		"graph + group_by": `{"relations":[{"name":"E","attrs":["S","D"]}],` +
			`"group_by":["S"],"graph":{"kind":"bfs"}}`,
		"graph + semiring": `{"relations":[{"name":"E","attrs":["S","D"]}],` +
			`"semiring":"minplus","graph":{"kind":"bfs"}}`,
		"graph + two relations": `{"relations":[{"name":"R1","attrs":["A","B"]},` +
			`{"name":"R2","attrs":["B","C"]}],"graph":{"kind":"bfs"}}`,
	} {
		resp, out := postJSON(t, ts.URL+"/v2/query", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d %s, want 400", name, resp.StatusCode, out)
		}
	}

	// v1 predates the graph block: the key is an unknown field there.
	resp, out := postJSON(t, ts.URL+"/v1/query",
		fmt.Sprintf(graphQueryV2, `{"kind":"bfs"}`, ""))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("v1 graph query = %d %s, want 400", resp.StatusCode, out)
	}
}

func TestGraphQueryCacheRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerChainGraph(t, ts.URL)

	body := fmt.Sprintf(graphQueryV2, `{"kind":"sssp","source":0}`, "")
	resp, cold := postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold = %d %s", resp.StatusCode, cold)
	}
	if decodeResp(t, cold)["cached"] == true {
		t.Fatal("cold graph query served from cache")
	}
	resp, warm := postJSON(t, ts.URL+"/v2/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm = %d %s", resp.StatusCode, warm)
	}
	if decodeResp(t, warm)["cached"] != true {
		t.Fatalf("identical graph query not served from cache: %s", warm)
	}
	if !reflect.DeepEqual(stripVolatile(t, cold), stripVolatile(t, warm)) {
		t.Fatalf("cached graph body differs:\n%s\n%s", cold, warm)
	}

	// Different driver parameters are different identities.
	other := fmt.Sprintf(graphQueryV2, `{"kind":"sssp","source":1}`, "")
	resp, out := postJSON(t, ts.URL+"/v2/query", other)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("src=1 = %d %s", resp.StatusCode, out)
	}
	if decodeResp(t, out)["cached"] == true {
		t.Fatal("sssp from a different source hit the cache of source 0")
	}
}

// TestCacheIdentityFaultedVsClean pins the cache-identity invariant for
// fault-injected queries: the fault schedule is part of the result
// identity (it changes the fault report, and, on budget exhaustion, the
// outcome), so a clean query must never be served the cached body of a
// faulted-but-identical-otherwise query — in either direction. The
// regression shape: run the faulted query FIRST so its entry is the one
// sitting in the cache when the clean twin arrives.
func TestCacheIdentityFaultedVsClean(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMatMul(t, ts.URL)

	faulted := fmt.Sprintf(matmulQueryV2,
		`,"options":{"seed":11,"faults":{"drop_prob":0.3,"max_retries":16}}`)
	clean := fmt.Sprintf(matmulQueryV2, `,"options":{"seed":11}`)

	resp, fbody := postJSON(t, ts.URL+"/v2/query", faulted)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted query = %d %s", resp.StatusCode, fbody)
	}
	fm := decodeResp(t, fbody)
	if fm["faults"] == nil {
		t.Fatalf("faulted query has no fault report: %s", fbody)
	}

	// The clean twin arrives next, in default cache mode. It must execute
	// fresh: not cached, not coalesced, and above all no fault report.
	resp, cbody := postJSON(t, ts.URL+"/v2/query", clean)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean query = %d %s", resp.StatusCode, cbody)
	}
	cm := decodeResp(t, cbody)
	if cm["cached"] == true || cm["coalesced"] == true {
		t.Fatalf("clean query served the faulted query's cache entry: %s", cbody)
	}
	if cm["faults"] != nil {
		t.Fatalf("clean query carries a fault report: %s", cbody)
	}

	// Both identities cache independently: each twin's repeat hits its own
	// entry and reproduces its own body (fault report included).
	resp, fwarm := postJSON(t, ts.URL+"/v2/query", faulted)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted repeat = %d %s", resp.StatusCode, fwarm)
	}
	fw := decodeResp(t, fwarm)
	if fw["cached"] != true {
		t.Fatalf("faulted repeat missed its own cache entry: %s", fwarm)
	}
	if fw["faults"] == nil {
		t.Fatalf("cached faulted body lost its fault report: %s", fwarm)
	}
	resp, cwarm := postJSON(t, ts.URL+"/v2/query", clean)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean repeat = %d %s", resp.StatusCode, cwarm)
	}
	cw := decodeResp(t, cwarm)
	if cw["cached"] != true {
		t.Fatalf("clean repeat missed its own cache entry: %s", cwarm)
	}
	if cw["faults"] != nil {
		t.Fatalf("cached clean body grew a fault report: %s", cwarm)
	}
	if !reflect.DeepEqual(stripVolatile(t, fbody), stripVolatile(t, fwarm)) {
		t.Fatalf("faulted bodies differ across cache:\n%s\n%s", fbody, fwarm)
	}
	if !reflect.DeepEqual(stripVolatile(t, cbody), stripVolatile(t, cwarm)) {
		t.Fatalf("clean bodies differ across cache:\n%s\n%s", cbody, cwarm)
	}
}
