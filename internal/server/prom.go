package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// prom.go renders the metrics in the Prometheus text exposition format
// (version 0.0.4), hand-written because the module is stdlib-only by
// design. The surface mirrors the JSON MetricsSnapshot and adds two
// histograms — per-query MaxLoad and rounds — whose power-of-two buckets
// match how the paper's bounds scale (load halves when p doubles, so
// regressions show up as mass shifting one bucket).

// histBuckets is the bucket count of a histogram: upper bounds 2^0..2^19,
// plus the +Inf overflow bucket.
const histBuckets = 21

// histogram is a lock-free fixed-bucket histogram. Buckets hold per-bucket
// (non-cumulative) counts; the exposition accumulates them, since the text
// format requires cumulative le buckets.
type histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	total  atomic.Int64
}

func (h *histogram) observe(v int64) {
	i := 0
	for i < histBuckets-1 && v > int64(1)<<uint(i) {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, int64(1)<<uint(i), cum)
	}
	cum += h.counts[histBuckets-1].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// WritePrometheus writes the metrics as Prometheus text exposition. snap
// supplies the counter/gauge values (one consistent snapshot shared with
// the JSON view); the histograms are read live from m.
func (m *Metrics) WritePrometheus(w io.Writer, snap MetricsSnapshot) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("mpcd_queries_in_flight", "Queries admitted and executing.", snap.InFlight)
	gauge("mpcd_queries_queued", "Queries waiting in the admission queue.", snap.Queued)
	counter("mpcd_queries_completed_total", "Queries that returned a result.", snap.Completed)
	counter("mpcd_queries_cancelled_total", "Queries stopped by deadline, disconnect or drain.", snap.Cancelled)
	counter("mpcd_queries_failed_client_total", "Queries rejected by validation (4xx).", snap.FailedClient)
	counter("mpcd_queries_failed_internal_total", "Queries that errored inside the engine (5xx).", snap.FailedInternal)
	counter("mpcd_queries_rejected_total", "Queries shed at admission (queue full or draining).", snap.Rejected)
	counter("mpcd_queries_cache_served_total", "Queries answered from the result cache without executing.", snap.CacheServed)
	counter("mpcd_queries_coalesced_total", "Queries answered by joining an in-flight identical execution.", snap.Coalesced)
	counter("mpcd_cache_hits_total", "Result-cache lookups that hit.", snap.Cache.Hits)
	counter("mpcd_cache_misses_total", "Result-cache lookups that missed.", snap.Cache.Misses)
	counter("mpcd_cache_evictions_total", "Result-cache entries evicted by the LRU bound.", snap.Cache.Evictions)
	counter("mpcd_cache_invalidations_total", "Result-cache entries invalidated by dataset registration.", snap.Cache.Invalidations)
	gauge("mpcd_cache_entries", "Result-cache entries currently resident.", int64(snap.Cache.Entries))
	counter("mpcd_mpc_sum_load_total", "Cumulative metered SumLoad over completed queries.", snap.SumLoad)
	counter("mpcd_mpc_rounds_total", "Cumulative metered rounds over completed queries.", snap.Rounds)
	counter("mpcd_mpc_comm_units_total", "Cumulative metered communication units over completed queries.", snap.TotalComm)
	counter("mpcd_faults_injected_total", "Faults injected by the deterministic fault plane.", snap.FaultsInjected)
	counter("mpcd_faults_retried_total", "Round retries triggered by detected faults.", snap.FaultsRetried)
	counter("mpcd_faults_absorbed_total", "Faults absorbed at the barrier without retry (stragglers).", snap.FaultsAbsorbed)
	counter("mpcd_fault_budget_exceeded_total", "Queries failed because a round stayed faulty past its retry budget.", snap.FaultBudgetExceeded)
	gauge("mpcd_datasets", "Registered datasets.", int64(snap.Datasets))
	gauge("mpcd_dataset_version", "Current global dataset-registry version.", int64(snap.DatasetVersion))
	gauge("mpcd_admission_in_use", "Admission weight currently held.", snap.AdmitInUse)
	gauge("mpcd_admission_capacity", "Total admission capacity in worker units.", snap.AdmitCap)
	gauge("mpcd_admission_queued", "Waiters parked in the admission semaphore.", int64(snap.AdmitQueued))
	draining := int64(0)
	if snap.Draining {
		draining = 1
	}
	gauge("mpcd_draining", "1 while the server drains (sheds new work).", draining)

	if len(snap.ByEngine) > 0 {
		name := "mpcd_queries_by_engine_total"
		fmt.Fprintf(w, "# HELP %s Completed queries per engine.\n# TYPE %s counter\n", name, name)
		for _, ec := range snap.ByEngine {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", name, ec.Name, ec.Count)
		}
	}
	if len(snap.PlanEngines) > 0 {
		name := "mpcd_plan_engine_total"
		fmt.Fprintf(w, "# HELP %s Planner decisions per chosen engine.\n# TYPE %s counter\n", name, name)
		for _, ec := range snap.PlanEngines {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", name, ec.Name, ec.Count)
		}
	}
	if len(snap.Cancel) > 0 {
		name := "mpcd_queries_cancelled_by_cause_total"
		fmt.Fprintf(w, "# HELP %s Cancelled queries per cause.\n# TYPE %s counter\n", name, name)
		for _, ec := range snap.Cancel {
			fmt.Fprintf(w, "%s{cause=%q} %d\n", name, ec.Name, ec.Count)
		}
	}
	if len(snap.FaultKinds) > 0 {
		name := "mpcd_faults_by_kind_total"
		fmt.Fprintf(w, "# HELP %s Injected faults per kind.\n# TYPE %s counter\n", name, name)
		for _, ec := range snap.FaultKinds {
			fmt.Fprintf(w, "%s{kind=%q} %d\n", name, ec.Name, ec.Count)
		}
	}
	if len(snap.TenantServed) > 0 {
		name := "mpcd_tenant_served_total"
		fmt.Fprintf(w, "# HELP %s Successful responses per tenant.\n# TYPE %s counter\n", name, name)
		for _, ec := range snap.TenantServed {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, ec.Name, ec.Count)
		}
	}
	if len(snap.TenantShed) > 0 {
		name := "mpcd_tenant_shed_total"
		fmt.Fprintf(w, "# HELP %s Requests shed with 429 per tenant.\n# TYPE %s counter\n", name, name)
		for _, ec := range snap.TenantShed {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, ec.Name, ec.Count)
		}
	}
	if len(snap.TenantQueued) > 0 {
		name := "mpcd_tenant_queued"
		fmt.Fprintf(w, "# HELP %s Waiters currently parked in the admission queue per tenant.\n# TYPE %s gauge\n", name, name)
		for _, ec := range snap.TenantQueued {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, ec.Name, ec.Count)
		}
	}

	m.loadHist.write(w, "mpcd_query_max_load", "Per-query metered MaxLoad (units).")
	m.roundsHist.write(w, "mpcd_query_rounds", "Per-query metered round count.")
}
