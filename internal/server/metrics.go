package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"mpcjoin/internal/mpc"
	"mpcjoin/internal/serve"
)

// Metrics is the service's observability surface: lock-free counters on
// the hot path (per-query atomics), a small mutex-guarded map for the
// per-engine breakdown. Snapshot assembles the JSON served at /metrics.
type Metrics struct {
	inFlight       atomic.Int64 // queries admitted and executing
	queued         atomic.Int64 // queries waiting in the admission queue
	completed      atomic.Int64 // queries that returned a result
	cancelled      atomic.Int64 // queries stopped by deadline/disconnect/drain
	failedClient   atomic.Int64 // queries rejected by validation (HTTP 4xx)
	failedInternal atomic.Int64 // queries that errored inside the engine (HTTP 5xx)
	rejected       atomic.Int64 // queries shed at admission (queue full, draining)
	cacheServed    atomic.Int64 // queries answered from the result cache (no execution)
	coalesced      atomic.Int64 // queries answered by joining an in-flight execution

	// Cumulative metered MPC cost across completed queries; SumLoad is the
	// paper's end-to-end cost measure, so the service exposes its running
	// total alongside rounds and total communication.
	sumLoad   atomic.Int64
	rounds    atomic.Int64
	totalComm atomic.Int64

	// Fault-plane accounting over fault-injected queries: injected /
	// retried / absorbed sum the per-query FaultReports; faultBudget
	// counts queries whose retries could not absorb the schedule.
	faultsInjected atomic.Int64
	faultsRetried  atomic.Int64
	faultsAbsorbed atomic.Int64
	faultBudget    atomic.Int64

	// Per-query cost distributions (completed queries only), exposed as
	// Prometheus histograms by WritePrometheus.
	loadHist   histogram
	roundsHist histogram

	mu           sync.Mutex
	byEngine     map[string]int64 // completed queries per engine ("matmul", …)
	byPlanEngine map[string]int64 // planner decisions per chosen engine
	byOutcome    map[string]int64 // cancellations per cause ("deadline", …)
	byFault      map[string]int64 // injected faults per kind ("crash", …)
	tenantServed map[string]int64 // successful responses per tenant (any path)
	tenantShed   map[string]int64 // 429s per tenant (global or tenant quota)
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		byEngine:     make(map[string]int64),
		byPlanEngine: make(map[string]int64),
		byOutcome:    make(map[string]int64),
		byFault:      make(map[string]int64),
		tenantServed: make(map[string]int64),
		tenantShed:   make(map[string]int64),
	}
}

// QueryQueued / QueryDequeued bracket time spent in the admission queue.
func (m *Metrics) QueryQueued()   { m.queued.Add(1) }
func (m *Metrics) QueryDequeued() { m.queued.Add(-1) }

// QueryStarted / QueryFinished bracket an admitted execution.
func (m *Metrics) QueryStarted()  { m.inFlight.Add(1) }
func (m *Metrics) QueryFinished() { m.inFlight.Add(-1) }

// QueryRejected records a shed request (admission queue full or draining).
func (m *Metrics) QueryRejected() { m.rejected.Add(1) }

// QueryCacheServed records a query answered from the result cache without
// executing.
func (m *Metrics) QueryCacheServed() { m.cacheServed.Add(1) }

// QueryCoalesced records a query answered by joining another request's
// in-flight execution instead of running its own.
func (m *Metrics) QueryCoalesced() { m.coalesced.Add(1) }

// TenantServed records a successful response for a tenant, whatever path
// served it (execution, cache, coalescing).
func (m *Metrics) TenantServed(tenant string) {
	m.mu.Lock()
	m.tenantServed[tenant]++
	m.mu.Unlock()
}

// TenantShed records a request shed with 429 for a tenant (global queue
// full or that tenant's quota exhausted).
func (m *Metrics) TenantShed(tenant string) {
	m.mu.Lock()
	m.tenantShed[tenant]++
	m.mu.Unlock()
}

// QueryFailedClient records a query rejected for a request-side reason
// (validation, schema mismatch): the client must change the request.
func (m *Metrics) QueryFailedClient() { m.failedClient.Add(1) }

// QueryFailedInternal records a query that errored inside the engine —
// a server-side failure the client cannot fix by changing the request.
func (m *Metrics) QueryFailedInternal() { m.failedInternal.Add(1) }

// QueryCancelled records a query stopped by its context, keyed by cause.
func (m *Metrics) QueryCancelled(cause string) {
	m.cancelled.Add(1)
	m.mu.Lock()
	m.byOutcome[cause]++
	m.mu.Unlock()
}

// QueryCompleted records a successful query: the engine that ran it and
// its metered cost.
func (m *Metrics) QueryCompleted(engine string, st mpc.Stats) {
	m.completed.Add(1)
	m.sumLoad.Add(st.SumLoad)
	m.rounds.Add(int64(st.Rounds))
	m.totalComm.Add(st.TotalComm)
	m.loadHist.observe(int64(st.MaxLoad))
	m.roundsHist.observe(int64(st.Rounds))
	m.mu.Lock()
	m.byEngine[engine]++
	m.mu.Unlock()
}

// PlanEngine records one planner decision, keyed by the engine the plan
// chose. Counted per served join query (fresh, cached or coalesced) and
// per dry-run plan, so the breakdown tracks what the planner decides, not
// only what executes.
func (m *Metrics) PlanEngine(engine string) {
	if engine == "" {
		return
	}
	m.mu.Lock()
	m.byPlanEngine[engine]++
	m.mu.Unlock()
}

// FaultsObserved folds one query's fault-plane accounting into the
// service counters, keyed by fault kind. Called for every fault-injected
// query, successful or not.
func (m *Metrics) FaultsObserved(rep mpc.FaultReport) {
	if rep.Injected == 0 && rep.Retried == 0 {
		return
	}
	m.faultsInjected.Add(int64(rep.Injected))
	m.faultsRetried.Add(int64(rep.Retried))
	m.faultsAbsorbed.Add(int64(rep.Absorbed))
	m.mu.Lock()
	if rep.Stragglers > 0 {
		m.byFault["straggler"] += int64(rep.Stragglers)
	}
	if rep.Crashes > 0 {
		m.byFault["crash"] += int64(rep.Crashes)
	}
	if rep.Drops > 0 {
		m.byFault["drop"] += int64(rep.Drops)
	}
	m.mu.Unlock()
}

// FaultBudgetExhausted records a query that failed because a round
// stayed faulty past its retry budget.
func (m *Metrics) FaultBudgetExhausted() { m.faultBudget.Add(1) }

// MetricsSnapshot is the JSON shape of /metrics.
type MetricsSnapshot struct {
	InFlight  int64 `json:"in_flight"`
	Queued    int64 `json:"queued"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	// Failed is FailedClient + FailedInternal (kept for dashboards built
	// on the pre-split shape).
	Failed         int64 `json:"failed"`
	FailedClient   int64 `json:"failed_client"`
	FailedInternal int64 `json:"failed_internal"`
	Rejected       int64 `json:"rejected"`
	// CacheServed counts queries answered from the result cache without
	// executing; Coalesced counts queries answered by joining an in-flight
	// identical execution. Cache carries the cache's own hit/miss/eviction
	// counters and current entry count.
	CacheServed int64            `json:"cache_served"`
	Coalesced   int64            `json:"coalesced"`
	Cache       serve.CacheStats `json:"cache"`

	// Cumulative metered MPC cost over completed queries.
	SumLoad   int64 `json:"sum_load"`
	Rounds    int64 `json:"rounds"`
	TotalComm int64 `json:"total_comm"`

	// Fault-plane accounting over fault-injected queries.
	FaultsInjected      int64         `json:"faults_injected"`
	FaultsRetried       int64         `json:"faults_retried"`
	FaultsAbsorbed      int64         `json:"faults_absorbed"`
	FaultBudgetExceeded int64         `json:"fault_budget_exceeded"`
	FaultKinds          []EngineCount `json:"fault_kinds"`

	ByEngine []EngineCount `json:"by_engine"`
	// PlanEngines breaks down planner decisions by chosen engine; unlike
	// ByEngine it also counts cache hits, coalesced waiters and dry-run
	// /v2/plan calls.
	PlanEngines []EngineCount `json:"plan_engines"`
	Cancel      []EngineCount `json:"cancel_causes"`
	// Per-tenant serving-plane breakdown: successful responses, shed
	// requests (429), and currently queued waiters.
	TenantServed []EngineCount `json:"tenant_served"`
	TenantShed   []EngineCount `json:"tenant_shed"`
	TenantQueued []EngineCount `json:"tenant_queued"`
	Datasets     int           `json:"datasets"`
	// DatasetVersion is the registry's current global version; it
	// increments on every registration.
	DatasetVersion uint64 `json:"dataset_version"`
	AdmitInUse     int64  `json:"admission_in_use"`
	AdmitCap       int64  `json:"admission_capacity"`
	AdmitQueued    int    `json:"admission_queued"`
	Draining       bool   `json:"draining"`
}

// EngineCount is one per-engine (or per-cause) tally; a sorted slice keeps
// the JSON deterministic, unlike a map.
type EngineCount struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
}

// Snapshot returns a point-in-time copy of all counters. The atomics are
// read independently, so cross-counter invariants (completed+cancelled vs
// started) may be off by in-flight transitions — fine for monitoring.
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		InFlight:       m.inFlight.Load(),
		Queued:         m.queued.Load(),
		Completed:      m.completed.Load(),
		Cancelled:      m.cancelled.Load(),
		FailedClient:   m.failedClient.Load(),
		FailedInternal: m.failedInternal.Load(),
		Rejected:       m.rejected.Load(),
		CacheServed:    m.cacheServed.Load(),
		Coalesced:      m.coalesced.Load(),
		SumLoad:        m.sumLoad.Load(),
		Rounds:         m.rounds.Load(),
		TotalComm:      m.totalComm.Load(),

		FaultsInjected:      m.faultsInjected.Load(),
		FaultsRetried:       m.faultsRetried.Load(),
		FaultsAbsorbed:      m.faultsAbsorbed.Load(),
		FaultBudgetExceeded: m.faultBudget.Load(),
	}
	snap.Failed = snap.FailedClient + snap.FailedInternal
	m.mu.Lock()
	snap.ByEngine = sortedCounts(m.byEngine)
	snap.PlanEngines = sortedCounts(m.byPlanEngine)
	snap.Cancel = sortedCounts(m.byOutcome)
	snap.FaultKinds = sortedCounts(m.byFault)
	snap.TenantServed = sortedCounts(m.tenantServed)
	snap.TenantShed = sortedCounts(m.tenantShed)
	m.mu.Unlock()
	return snap
}

func sortedCounts(m map[string]int64) []EngineCount {
	out := make([]EngineCount, 0, len(m))
	for k, v := range m {
		out = append(out, EngineCount{Name: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
