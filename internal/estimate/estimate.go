// Package estimate implements the §2.2 output-size estimator of Hu–Yi
// PODS'20: constant-factor approximations of OUT and of the per-value
// contributions OUT_a for line queries (matrix multiplication being the
// n = 2 case), computed in O(1) rounds with linear load.
//
// The estimator hashes each distinct value of the far endpoint attribute,
// maintains a k-minimum-values sketch per value of each intermediate
// attribute, and folds the sketches toward the near endpoint with n
// reduce-by-key passes whose combiner is the KMV merge. Accuracy is
// boosted to 1−1/N^{Ω(1)} by running O(log N) independent repetitions in
// parallel and taking the per-value median.
//
// Attributes may be composite ("combined attributes" arising from the
// star/star-like reductions): every path position is a list of concrete
// attributes, keyed by its order-preserving byte encoding.
//
// Metering note: a sketch vector is O(k·log N) machine words, i.e.
// O(log N) units in the model's terms. The simulator counts each Part
// element as one unit, so measured estimator loads are a polylog factor
// below the physical truth — consistent with the paper's Õ(N/p) claim for
// this primitive, and called out in EXPERIMENTS.md.
package estimate

import (
	"math"
	"sort"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/kmv"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
)

// DefaultK is the per-sketch size; the estimator's relative error is
// ~1/√K per repetition, tightened by the median over repetitions.
const DefaultK = 64

// Params configures the estimator.
type Params struct {
	// K is the KMV sketch size (default DefaultK).
	K int
	// Reps is the number of independent repetitions (default ⌈log₂ N⌉,
	// minimum 5, forced odd for a well-defined median).
	Reps int
	// Seed derives the independent hash functions.
	Seed uint64
}

// WithDefaults fills unset fields given an instance size n.
func (p Params) WithDefaults(n int) Params {
	if p.K == 0 {
		p.K = DefaultK
	}
	if p.Reps == 0 {
		p.Reps = int(math.Ceil(math.Log2(float64(n + 2))))
	}
	if p.Reps < 5 {
		p.Reps = 5
	}
	if p.Reps%2 == 0 {
		p.Reps++
	}
	return p
}

// Vec is a vector of independent KMV sketches (one per repetition).
type Vec struct {
	Sk []kmv.Sketch
}

// NewVec returns an empty sketch vector.
func NewVec(p Params) Vec {
	v := Vec{Sk: make([]kmv.Sketch, p.Reps)}
	for i := range v.Sk {
		v.Sk[i] = kmv.New(p.K, p.Seed+uint64(i)*0x9e37)
	}
	return v
}

// SingletonVec is NewVec(p).Insert(item) without the intermediate empty
// vector: every repetition's one-element value list is carved out of one
// backing buffer, so building the per-row base-case sketch costs two
// allocations instead of one per repetition.
func SingletonVec(p Params, item uint64) Vec {
	v := Vec{Sk: make([]kmv.Sketch, p.Reps)}
	buf := make([]uint64, p.Reps)
	for i := range v.Sk {
		seed := p.Seed + uint64(i)*0x9e37
		buf[i] = kmv.Hash64(item, seed)
		v.Sk[i] = kmv.Sketch{K: p.K, Seed: seed, Vals: buf[i : i+1 : i+1]}
	}
	return v
}

// Insert adds an item to every repetition.
func (v Vec) Insert(item uint64) Vec {
	out := Vec{Sk: make([]kmv.Sketch, len(v.Sk))}
	for i := range v.Sk {
		out.Sk[i] = v.Sk[i].Insert(item)
	}
	return out
}

// MergeVec merges two sketch vectors repetition-wise. All repetitions'
// merged value lists are carved out of one backing buffer (sketch values
// are immutable once built, so repetitions where one side is empty alias
// the other side's values directly) — two allocations per merge instead
// of one per repetition.
func MergeVec(a, b Vec) Vec {
	out := Vec{Sk: make([]kmv.Sketch, len(a.Sk))}
	total := 0
	for i := range a.Sk {
		la, lb := len(a.Sk[i].Vals), len(b.Sk[i].Vals)
		if la > 0 && lb > 0 {
			total += min(la+lb, a.Sk[i].K)
		}
	}
	buf := make([]uint64, 0, total)
	for i := range a.Sk {
		switch {
		case len(b.Sk[i].Vals) == 0:
			out.Sk[i] = a.Sk[i]
		case len(a.Sk[i].Vals) == 0:
			out.Sk[i] = kmv.Sketch{K: a.Sk[i].K, Seed: a.Sk[i].Seed, Vals: b.Sk[i].Vals}
		default:
			start := len(buf)
			buf = kmv.AppendMerge(buf, a.Sk[i], b.Sk[i])
			out.Sk[i] = kmv.Sketch{K: a.Sk[i].K, Seed: a.Sk[i].Seed, Vals: buf[start:len(buf):len(buf)]}
		}
	}
	return out
}

// Estimate returns the median distinct-count estimate across repetitions.
func (v Vec) Estimate() float64 {
	ests := make([]float64, len(v.Sk))
	for i, s := range v.Sk {
		ests[i] = s.Estimate()
	}
	sort.Float64s(ests)
	return ests[len(ests)/2]
}

// KeySketch pairs an encoded attribute-tuple value with a sketch vector.
type KeySketch struct {
	Key string
	V   Vec
}

// hashItem maps an encoded value tuple to the 64-bit item space (FNV-1a);
// 64-bit collisions are negligible at the instance sizes involved.
func hashItem(enc string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(enc); i++ {
		h ^= uint64(enc[i])
		h *= 0x100000001b3
	}
	return h
}

// SketchValues builds, for every distinct value tuple of keyAttrs in r, a
// sketch vector of the distinct itemAttrs tuples co-occurring with it — the
// base case of the §2.2 fold (hashing dom(A_{n+1}) per value of A_n).
// Cost: one reduce-by-key.
func SketchValues[W any](r dist.Rel[W], keyAttrs, itemAttrs []dist.Attr, p Params) (mpc.Part[KeySketch], mpc.Stats) {
	p = p.WithDefaults(r.N())
	kc := r.Cols(keyAttrs...)
	ic := r.Cols(itemAttrs...)
	singles := mpc.Map(r.Part, func(row relation.Row[W]) KeySketch {
		return KeySketch{
			Key: relation.EncodeKey(row.Vals, kc),
			V:   SingletonVec(p, hashItem(relation.EncodeKey(row.Vals, ic))),
		}
	})
	return mpc.ReduceByKey(singles,
		func(ks KeySketch) string { return ks.Key },
		func(a, b KeySketch) KeySketch { return KeySketch{Key: a.Key, V: MergeVec(a.V, b.V)} })
}

// Propagate folds sketches one edge toward the output: given per-value
// sketches over dom(fromAttrs) and an edge relation over
// (toAttrs ∪ fromAttrs), it returns per-value sketches over dom(toAttrs),
// where each to-value's sketch is the KMV merge over its from-neighbors.
// Cost: one multi-search plus one reduce-by-key.
func Propagate[W any](edges dist.Rel[W], toAttrs, fromAttrs []dist.Attr, sk mpc.Part[KeySketch], p Params) (mpc.Part[KeySketch], mpc.Stats) {
	tc := edges.Cols(toAttrs...)
	fc := edges.Cols(fromAttrs...)
	looked, st1 := mpc.LookupJoin(edges.Part, sk,
		func(row relation.Row[W]) string { return relation.EncodeKey(row.Vals, fc) },
		func(ks KeySketch) string { return ks.Key })
	carried := mpc.Map(mpc.Filter(looked, func(pr mpc.Pred[relation.Row[W], KeySketch]) bool { return pr.Found }),
		func(pr mpc.Pred[relation.Row[W], KeySketch]) KeySketch {
			return KeySketch{Key: relation.EncodeKey(pr.X.Vals, tc), V: pr.Y.V}
		})
	merged, st2 := mpc.ReduceByKey(carried,
		func(ks KeySketch) string { return ks.Key },
		func(a, b KeySketch) KeySketch { return KeySketch{Key: a.Key, V: MergeVec(a.V, b.V)} })
	return merged, mpc.Seq(st1, st2)
}

// LineOut runs the full §2.2 pipeline on a line query: rels[i] is the
// relation over (path[i] ∪ path[i+1]), i = 0..n−1, with dangling tuples
// already removed. Path positions may be composite attribute lists. It
// returns the per-value estimates OUT_a for a ∈ dom(path[0]) (one entry
// per distinct value tuple, keyed by its encoding), the total estimate of
// OUT = Σ_a OUT_a, and the metered cost. Estimates are constant-factor
// approximations w.h.p.
func LineOut[W any](rels []dist.Rel[W], path [][]dist.Attr, p Params) (mpc.Part[mpc.KeyCount[string]], int64, mpc.Stats) {
	if len(rels) < 1 || len(path) != len(rels)+1 {
		panic("estimate: LineOut path/relation mismatch")
	}
	p = p.WithDefaults(totalN(rels))
	n := len(rels)
	sk, st := SketchValues(rels[n-1], path[n-1], path[n], p)
	for i := n - 2; i >= 0; i-- {
		var s mpc.Stats
		sk, s = Propagate(rels[i], path[i], path[i+1], sk, p)
		st = mpc.Seq(st, s)
	}
	ests := mpc.Map(sk, func(ks KeySketch) mpc.KeyCount[string] {
		e := int64(math.Round(ks.V.Estimate()))
		if e < 1 {
			e = 1
		}
		return mpc.KeyCount[string]{Key: ks.Key, Count: e}
	})
	total, st2 := SumCounts(ests)
	return ests, total, mpc.Seq(st, st2)
}

// MatMulOut estimates OUT and OUT_a for ∑_B R1(A,B) ⋈ R2(B,C): the n = 2
// line query with (possibly composite) path A–B–C.
func MatMulOut[W any](r1, r2 dist.Rel[W], a, b, c []dist.Attr, p Params) (mpc.Part[mpc.KeyCount[string]], int64, mpc.Stats) {
	return LineOut([]dist.Rel[W]{r1, r2}, [][]dist.Attr{a, b, c}, p)
}

// SumCounts totals the Count fields via a coordinator round and broadcast,
// so every server learns the global sum.
func SumCounts[K interface{ ~string | ~int64 }](pt mpc.Part[mpc.KeyCount[K]]) (int64, mpc.Stats) {
	p := pt.P()
	local := mpc.NewPartIn[int64](pt.Scope(), p)
	for s, shard := range pt.Shards {
		var t int64
		for _, kc := range shard {
			t += kc.Count
		}
		local.Shards[s] = []int64{t}
	}
	g, st1 := mpc.Gather(local, 0)
	var total int64
	for _, x := range g.Shards[0] {
		total += x
	}
	tot := mpc.NewPartIn[int64](pt.Scope(), p)
	tot.Shards[0] = []int64{total}
	_, st2 := mpc.Broadcast(tot)
	return total, mpc.Seq(st1, st2)
}

func totalN[W any](rels []dist.Rel[W]) int {
	n := 0
	for _, r := range rels {
		n += r.N()
	}
	return n
}
