package estimate

import (
	"math"
	"math/rand"
	"testing"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

// Composite-attribute path segments for the matmul estimator calls.
var (
	a1 = []dist.Attr{"A"}
	b1 = []dist.Attr{"B"}
	c1 = []dist.Attr{"C"}
)

func TestVecMedianBoost(t *testing.T) {
	p := Params{K: 32, Reps: 9, Seed: 7}
	v := NewVec(p)
	for i := uint64(0); i < 5000; i++ {
		v = v.Insert(i)
	}
	est := v.Estimate()
	if est < 2500 || est > 10000 {
		t.Fatalf("median estimate %v too far from 5000", est)
	}
}

func TestMergeVecEqualsUnion(t *testing.T) {
	p := Params{K: 16, Reps: 5, Seed: 3}
	a, b, u := NewVec(p), NewVec(p), NewVec(p)
	for i := uint64(0); i < 300; i++ {
		if i%2 == 0 {
			a = a.Insert(i)
		} else {
			b = b.Insert(i)
		}
		u = u.Insert(i)
	}
	m := MergeVec(a, b)
	if m.Estimate() != u.Estimate() {
		t.Fatalf("merge estimate %v != union estimate %v", m.Estimate(), u.Estimate())
	}
}

// buildMatMul creates R1(A,B), R2(B,C) where each a joins exactly fan
// distinct c values (disjoint across a's), so OUT = nA·fan exactly.
func buildMatMul(nA, fan int) (db.Instance[int64], *hypergraph.Query) {
	q := hypergraph.MatMulQuery()
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for a := 0; a < nA; a++ {
		r1.Append(1, relation.Value(a), relation.Value(a))
		for f := 0; f < fan; f++ {
			r2.Append(1, relation.Value(a), relation.Value(a*fan+f))
		}
	}
	return db.Instance[int64]{"R1": r1, "R2": r2}, q
}

func TestMatMulOutAccuracy(t *testing.T) {
	inst, q := buildMatMul(50, 40) // OUT = 2000
	_ = q
	const p = 8
	r1 := dist.FromRelation(inst["R1"], p)
	r2 := dist.FromRelation(inst["R2"], p)
	ests, total, st := MatMulOut(r1, r2, a1, b1, c1, Params{Seed: 11})
	if total < 1000 || total > 4000 {
		t.Fatalf("OUT estimate %d too far from 2000", total)
	}
	// Per-a estimates: each a joins exactly 40 c's.
	nVals := 0
	for _, kc := range mpc.Collect(ests) {
		nVals++
		if kc.Count < 15 || kc.Count > 120 {
			t.Fatalf("OUT_a estimate %d for a=%v too far from 40", kc.Count, relation.DecodeKey(kc.Key))
		}
	}
	if nVals != 50 {
		t.Fatalf("estimates for %d values, want 50", nVals)
	}
	if st.Rounds == 0 {
		t.Fatal("estimator must consume rounds")
	}
}

func TestMatMulOutSharedColumns(t *testing.T) {
	// All a's join the SAME set of c's: per-a fanout small, total OUT large.
	q := hypergraph.MatMulQuery()
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	const nA, nC = 60, 30
	for a := 0; a < nA; a++ {
		r1.Append(1, relation.Value(a), 0)
	}
	for c := 0; c < nC; c++ {
		r2.Append(1, 0, relation.Value(c))
	}
	inst := db.Instance[int64]{"R1": r1, "R2": r2}
	wantOut, err := refengine.CountOutput[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	_, total, _ := MatMulOut(dist.FromRelation(r1, p), dist.FromRelation(r2, p), a1, b1, c1, Params{Seed: 5})
	if float64(total) < 0.5*float64(wantOut) || float64(total) > 2*float64(wantOut) {
		t.Fatalf("OUT estimate %d vs true %d", total, wantOut)
	}
}

func TestLineOutLongerPath(t *testing.T) {
	// 3-hop path where each a reaches a known set of endpoints.
	q := hypergraph.LineQuery(3)
	rng := rand.New(rand.NewSource(21))
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < 150; i++ {
			r.Append(1, relation.Value(rng.Intn(25)), relation.Value(rng.Intn(25)))
		}
		inst[e.Name] = r
	}
	// Remove dangling first (the estimator's precondition).
	red := refengine.RemoveDangling(q, inst)
	wantOut, err := refengine.CountOutput[int64](intSR, q, red)
	if err != nil {
		t.Fatal(err)
	}
	if wantOut == 0 {
		t.Skip("degenerate instance")
	}
	const p = 6
	rels := []dist.Rel[int64]{
		dist.FromRelation(red["R1"], p),
		dist.FromRelation(red["R2"], p),
		dist.FromRelation(red["R3"], p),
	}
	_, total, _ := LineOut(rels, [][]dist.Attr{{"A1"}, {"A2"}, {"A3"}, {"A4"}}, Params{Seed: 9})
	ratio := float64(total) / float64(wantOut)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("OUT estimate %d vs true %d (ratio %.2f)", total, wantOut, ratio)
	}
}

func TestLineOutLinearLoad(t *testing.T) {
	// The estimator must not exceed ~N/p load (in sketch units).
	const n, p = 6000, 12
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		r1.Append(1, relation.Value(rng.Intn(n)), relation.Value(rng.Intn(200)))
		r2.Append(1, relation.Value(rng.Intn(200)), relation.Value(rng.Intn(n)))
	}
	_, _, st := MatMulOut(dist.FromRelation(r1, p), dist.FromRelation(r2, p), a1, b1, c1, Params{Seed: 2})
	if st.MaxLoad > 8*(2*n)/p {
		t.Fatalf("estimator load %d not linear (N/p = %d)", st.MaxLoad, 2*n/p)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := (Params{}).WithDefaults(1000)
	if p.K != DefaultK {
		t.Fatalf("K = %d", p.K)
	}
	if p.Reps < 5 || p.Reps%2 == 0 {
		t.Fatalf("Reps = %d", p.Reps)
	}
	even := Params{Reps: 6}
	if got := even.WithDefaults(10); got.Reps != 7 {
		t.Fatalf("even reps not bumped: %d", got.Reps)
	}
}

func TestEstimateExactBelowK(t *testing.T) {
	// Fewer distinct items than K: estimates must be exact, so LineOut is
	// deterministic on tiny instances.
	inst, _ := buildMatMul(10, 3) // per-a fanout 3 < K
	const p = 4
	ests, total, _ := MatMulOut(
		dist.FromRelation(inst["R1"], p), dist.FromRelation(inst["R2"], p),
		a1, b1, c1, Params{Seed: 1})
	if total != 30 {
		t.Fatalf("exact regime estimate %d, want 30", total)
	}
	for _, kc := range mpc.Collect(ests) {
		if kc.Count != 3 {
			t.Fatalf("exact per-a estimate %d, want 3", kc.Count)
		}
	}
	_ = math.Pi
}

func TestSingletonVecEqualsNewInsert(t *testing.T) {
	p := Params{K: 16, Reps: 5, Seed: 3}
	for _, item := range []uint64{0, 1, 42, ^uint64(0)} {
		got, want := SingletonVec(p, item), NewVec(p).Insert(item)
		if len(got.Sk) != len(want.Sk) {
			t.Fatalf("item %d: %d repetitions, want %d", item, len(got.Sk), len(want.Sk))
		}
		for i := range want.Sk {
			g, w := got.Sk[i], want.Sk[i]
			if g.K != w.K || g.Seed != w.Seed || len(g.Vals) != len(w.Vals) {
				t.Fatalf("item %d rep %d: sketch %+v, want %+v", item, i, g, w)
			}
			for j := range w.Vals {
				if g.Vals[j] != w.Vals[j] {
					t.Fatalf("item %d rep %d: vals %v, want %v", item, i, g.Vals, w.Vals)
				}
			}
		}
	}
}

func TestMergeVecAliasesSingleSidedRepetitions(t *testing.T) {
	// A repetition where one side is empty must carry the other side's
	// values unchanged; a later Insert on the result must not disturb the
	// originals (copy-on-write).
	p := Params{K: 4, Reps: 5, Seed: 9}
	a, b := NewVec(p), NewVec(p).Insert(7)
	m := MergeVec(a, b)
	before := append([]uint64(nil), b.Sk[0].Vals...)
	_ = m.Insert(8)
	for j, v := range before {
		if b.Sk[0].Vals[j] != v {
			t.Fatalf("Insert on merged vec mutated source sketch: %v vs %v", b.Sk[0].Vals, before)
		}
	}
	if m.Estimate() != b.Estimate() {
		t.Fatalf("merge with empty side: estimate %v, want %v", m.Estimate(), b.Estimate())
	}
}
