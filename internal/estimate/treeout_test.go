package estimate

import (
	"testing"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
)

func TestTagVecDisjointUnion(t *testing.T) {
	// Tagging a set's sketch with two distinct tags yields sketches of two
	// disjoint copies: their merge must estimate exactly 2·|S| while the
	// per-repetition sketches stay unsaturated.
	p := Params{K: 64, Reps: 5, Seed: 11}
	v := NewVec(p)
	const m = 20
	for i := uint64(0); i < m; i++ {
		v = v.Insert(i)
	}
	u := MergeVec(TagVec(v, 1), TagVec(v, 2))
	if est := u.Estimate(); est != 2*m {
		t.Fatalf("disjoint tagged union estimate %v, want %d", est, 2*m)
	}
	// The same tag twice is the same set — merging must not double count.
	same := MergeVec(TagVec(v, 7), TagVec(v, 7))
	if est := same.Estimate(); est != m {
		t.Fatalf("idempotent tagged merge estimate %v, want %d", est, m)
	}
}

func TestProductVecCardinality(t *testing.T) {
	p := Params{K: 64, Reps: 5, Seed: 4}
	a, b := NewVec(p), NewVec(p)
	for i := uint64(0); i < 5; i++ {
		a = a.Insert(i)
	}
	for i := uint64(100); i < 107; i++ {
		b = b.Insert(i)
	}
	// Unsaturated inputs make the pairwise remix exact: |A × B| = 35 ≤ K.
	if est := ProductVec(a, b).Estimate(); est != 35 {
		t.Fatalf("product estimate %v, want 35", est)
	}
}

// lineInstance is a 3-hop path with full reachability: A1 ∈ {0..4} all
// reach b=0, which reaches c ∈ {0..3}, each reaching d ∈ {0,1}. Output
// (A1, A4) has exactly 5·2 = 10 tuples; every intermediate stays far
// below the default sketch capacity, so the fold is exact.
func lineInstance() (*hypergraph.Query, db.Instance[int64]) {
	q := hypergraph.LineQuery(3)
	r1 := relation.New[int64]("A1", "A2")
	r2 := relation.New[int64]("A2", "A3")
	r3 := relation.New[int64]("A3", "A4")
	for a := 0; a < 5; a++ {
		r1.Append(1, relation.Value(a), 0)
	}
	for c := 0; c < 4; c++ {
		r2.Append(1, 0, relation.Value(c))
	}
	for c := 0; c < 4; c++ {
		for d := 0; d < 2; d++ {
			r3.Append(1, relation.Value(c), relation.Value(d))
		}
	}
	return q, db.Instance[int64]{"R1": r1, "R2": r2, "R3": r3}
}

func TestTreeOutProfileExactSmall(t *testing.T) {
	q, inst := lineInstance()
	wantOut, err := refengine.CountOutput[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if wantOut != 10 {
		t.Fatalf("instance lost its shape: OUT = %d, want 10", wantOut)
	}
	const p = 4
	rels := map[string]dist.Rel[int64]{
		"R1": dist.FromRelation(inst["R1"], p),
		"R2": dist.FromRelation(inst["R2"], p),
		"R3": dist.FromRelation(inst["R3"], p),
	}
	out, maxFold, maxImage, _ := TreeOutProfile(q, rels, Params{Seed: 9})
	if out != int64(wantOut) {
		t.Fatalf("OUT = %d, want exact %d (sketches unsaturated)", out, wantOut)
	}
	// The profile notes the root aggregation too, so the largest fold
	// intermediate is never below the output itself.
	if maxFold < out {
		t.Fatalf("maxFold %d < OUT %d", maxFold, out)
	}
	// The largest consumed image on this instance is the A3-keyed one: 4
	// values of c each carrying the 2-element set of reachable d. The
	// root image (keyed by A1) is bigger but is never a fold input.
	if maxImage != 8 {
		t.Fatalf("maxImage = %d, want 8", maxImage)
	}
}

func TestTreeOutProfileAggregationShrinksImages(t *testing.T) {
	// Heavy multiplicity on the middle hop: 60 parallel copies of the
	// b=0 → c edges blow up the un-aggregated fold intermediates, but the
	// aggregated images — distinct output-attribute tuples — are
	// untouched. This gap (maxFold ≫ maxImage ≈ OUT) is exactly the
	// profile early-aggregating engines are priced by.
	q, inst := lineInstance()
	r2 := relation.New[int64]("A2", "A3")
	for rep := 0; rep < 60; rep++ {
		for c := 0; c < 4; c++ {
			r2.Append(1, 0, relation.Value(c))
		}
	}
	inst["R2"] = r2
	const p = 4
	rels := map[string]dist.Rel[int64]{
		"R1": dist.FromRelation(inst["R1"], p),
		"R2": dist.FromRelation(inst["R2"], p),
		"R3": dist.FromRelation(inst["R3"], p),
	}
	out, maxFold, maxImage, _ := TreeOutProfile(q, rels, Params{Seed: 9})
	if out != 10 {
		t.Fatalf("multiplicity must not change OUT: got %d, want 10", out)
	}
	if maxImage != 8 {
		t.Fatalf("multiplicity must not change images: maxImage = %d, want 8", maxImage)
	}
	// The R2 fold now joins 240 tuples against the 2-wide images.
	if maxFold < 100 {
		t.Fatalf("maxFold = %d does not reflect the un-aggregated intermediate", maxFold)
	}
}
