// Tree-query size prediction for the planner's estimate-only pre-pass: a
// bottom-up count fold over the query tree that computes the full-join
// cardinality J exactly (the cost of a join that never aggregates), and a
// KMV image fold that estimates the aggregated output size OUT together
// with the largest intermediate an early-aggregating (Yannakakis-style)
// execution materializes.
//
// Both folds are deterministic for a fixed Params.Seed and independent of
// the partitioning: counts are integer sums and KMV merges are min-K set
// unions, so a plan computed server-side at registration time agrees with
// one computed inside a distributed execution.

package estimate

import (
	"math"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/kmv"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
)

// TreeCount computes the exact full-join cardinality J of a tree query:
// the number of tuples in ⋈_i R_i before aggregation. Cost: one
// reduce-by-key per leaf edge and one multi-search + reduce-by-key per
// internal edge.
func TreeCount[W any](q *hypergraph.Query, rels map[string]dist.Rel[W], p Params) (int64, mpc.Stats) {
	n := 0
	for _, r := range rels {
		n += r.N()
	}
	p = p.WithDefaults(n)
	f := &countFolder[W]{q: q, rels: rels}
	per, ok := f.down(foldRoot(q), -1)
	if !ok {
		// A single-attribute query (unary edges only at the root with no
		// neighbors) cannot occur for valid tree queries; guard anyway.
		return 0, f.st
	}
	total, st := SumCounts(per)
	f.st = mpc.Seq(f.st, st)
	return total, f.st
}

// TreeOut approximates the aggregated output size OUT of a tree query: the
// number of distinct output-attribute tuples in the join, every other
// attribute projected away with its multiplicity absorbed into the ⊕
// weight. It is the §2.2 sketch fold generalized from paths to trees, and
// the usual KMV constant-factor estimate.
func TreeOut[W any](q *hypergraph.Query, rels map[string]dist.Rel[W], p Params) (int64, mpc.Stats) {
	out, _, _, st := TreeOutProfile(q, rels, p)
	return out, st
}

// TreeOutProfile is TreeOut plus the fold profile an early-aggregating
// (Yannakakis-style) execution would exhibit on the instance:
//
//   - maxFold is the largest un-aggregated intermediate — for every edge,
//     the size of the edge relation joined against the aggregated image of
//     its subtree, maximized over edges and sibling-image joins;
//   - maxImage is the largest aggregated image any fold consumes as join
//     input — the size of the per-subtree relation after ⊕-aggregation,
//     maximized over fold inputs (the root image, which no fold consumes,
//     is excluded).
//
// Together they predict the Yannakakis candidate's fold costs: a query
// that aggregates heavily (J ≫ OUT) keeps both near the aggregated
// output, which is exactly why Yannakakis beats its own worst case on
// such instances. The maxima are taken over local sums of per-value
// estimates, so the profile adds no communication rounds to the fold.
func TreeOutProfile[W any](q *hypergraph.Query, rels map[string]dist.Rel[W], p Params) (out, maxFold, maxImage int64, st mpc.Stats) {
	n := 0
	for _, r := range rels {
		n += r.N()
	}
	p = p.WithDefaults(n)
	f := &imageFolder[W]{q: q, rels: rels, p: p}
	per, ok := f.down(foldRoot(q), -1)
	if !ok {
		return 0, 0, 0, f.st
	}
	// Root values are distinct, so the output tuples {a} × image(a) are
	// disjoint across a and OUT is the plain sum of per-value images.
	total := int64(math.Round(f.sumEst(per)))
	if total < 1 {
		total = 1
	}
	f.note(float64(total))
	return total, int64(math.Round(f.maxFold)), int64(math.Round(f.maxImage)), f.st
}

// foldRoot picks the attribute both folds recurse from: the first output
// attribute when there is one.
func foldRoot(q *hypergraph.Query) hypergraph.Attr {
	if len(q.Output) > 0 {
		return q.Output[0]
	}
	return q.Edges[0].Attrs[0]
}

// countFolder is the exact full-join count fold: per-value join-result
// counts flow from the leaves toward the root, multiplied across sibling
// subtrees and summed along edges.
type countFolder[W any] struct {
	q    *hypergraph.Query
	rels map[string]dist.Rel[W]
	st   mpc.Stats
}

// down returns, for every value a of attribute u reachable through edges
// other than skipEdge, the number of join results of u's subtree rooted at
// a (keyed by the value's encoding). ok is false when u has no such edges
// (u is a leaf from the parent's perspective).
func (f *countFolder[W]) down(u hypergraph.Attr, skipEdge int) (mpc.Part[mpc.KeyCount[string]], bool) {
	var acc mpc.Part[mpc.KeyCount[string]]
	have := false
	for _, ei := range f.q.EdgesAt(u) {
		if ei == skipEdge {
			continue
		}
		e := f.q.Edges[ei]
		r := f.rels[e.Name]
		var contrib mpc.Part[mpc.KeyCount[string]]
		if e.IsUnary() {
			contrib = f.degree(r, u)
		} else {
			v := e.Other(u)
			sub, ok := f.down(v, ei)
			if !ok {
				contrib = f.degree(r, u)
			} else {
				contrib = f.propagate(r, u, v, sub)
			}
		}
		if !have {
			acc, have = contrib, true
			continue
		}
		acc = f.product(acc, contrib)
	}
	return acc, have
}

// degree counts rows of r per value of u: the leaf base case.
func (f *countFolder[W]) degree(r dist.Rel[W], u hypergraph.Attr) mpc.Part[mpc.KeyCount[string]] {
	uc := r.Cols(u)
	ones := mpc.Map(r.Part, func(row relation.Row[W]) mpc.KeyCount[string] {
		return mpc.KeyCount[string]{Key: relation.EncodeKey(row.Vals, uc), Count: 1}
	})
	red, st := mpc.ReduceByKey(ones,
		func(kc mpc.KeyCount[string]) string { return kc.Key },
		func(a, b mpc.KeyCount[string]) mpc.KeyCount[string] {
			return mpc.KeyCount[string]{Key: a.Key, Count: addSat(a.Count, b.Count)}
		})
	f.st = mpc.Seq(f.st, st)
	return red
}

// propagate carries per-v counts across the edge relation r(u,v) and sums
// them per u: count(a) = Σ_{(a,b) ∈ r} sub(b). Rows whose v-value has no
// subtree match contribute nothing (they are dangling below v).
func (f *countFolder[W]) propagate(r dist.Rel[W], u, v hypergraph.Attr, sub mpc.Part[mpc.KeyCount[string]]) mpc.Part[mpc.KeyCount[string]] {
	uc, vc := r.Cols(u), r.Cols(v)
	looked, st1 := mpc.LookupJoin(r.Part, sub,
		func(row relation.Row[W]) string { return relation.EncodeKey(row.Vals, vc) },
		func(kc mpc.KeyCount[string]) string { return kc.Key })
	carried := mpc.Map(
		mpc.Filter(looked, func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[string]]) bool { return pr.Found }),
		func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[string]]) mpc.KeyCount[string] {
			return mpc.KeyCount[string]{Key: relation.EncodeKey(pr.X.Vals, uc), Count: pr.Y.Count}
		})
	red, st2 := mpc.ReduceByKey(carried,
		func(kc mpc.KeyCount[string]) string { return kc.Key },
		func(a, b mpc.KeyCount[string]) mpc.KeyCount[string] {
			return mpc.KeyCount[string]{Key: a.Key, Count: addSat(a.Count, b.Count)}
		})
	f.st = mpc.Seq(f.st, st1, st2)
	return red
}

// product multiplies two per-value count maps key-wise (sibling subtrees
// hanging off the same branch attribute); keys missing from either side
// drop out, matching the join semantics.
func (f *countFolder[W]) product(a, b mpc.Part[mpc.KeyCount[string]]) mpc.Part[mpc.KeyCount[string]] {
	looked, st := mpc.LookupJoin(a, b,
		func(kc mpc.KeyCount[string]) string { return kc.Key },
		func(kc mpc.KeyCount[string]) string { return kc.Key })
	f.st = mpc.Seq(f.st, st)
	return mpc.Map(
		mpc.Filter(looked, func(pr mpc.Pred[mpc.KeyCount[string], mpc.KeyCount[string]]) bool { return pr.Found }),
		func(pr mpc.Pred[mpc.KeyCount[string], mpc.KeyCount[string]]) mpc.KeyCount[string] {
			return mpc.KeyCount[string]{Key: pr.X.Key, Count: mulSat(pr.X.Count, pr.Y.Count)}
		})
}

// imageFolder is the KMV image fold behind TreeOutProfile: for every value
// a of the current attribute it carries a sketch of the distinct kept
// output-attribute tuples of a's subtree — exactly the relation an
// early-aggregating execution would have materialized after folding the
// subtree and ⊕-aggregating. Unions across parallel paths deduplicate (the
// same kept tuple reached through two intermediate values counts once),
// which is what separates OUT from the full-join count J.
type imageFolder[W any] struct {
	q        *hypergraph.Query
	rels     map[string]dist.Rel[W]
	p        Params
	st       mpc.Stats
	maxFold  float64
	maxImage float64
}

// note records a fold-intermediate size for the profile.
func (f *imageFolder[W]) note(size float64) {
	if size > f.maxFold {
		f.maxFold = size
	}
}

// sumEst sums the per-value image-cardinality estimates locally (no
// exchange): the fold profile is a prediction, not a metered computation.
func (f *imageFolder[W]) sumEst(pt mpc.Part[KeySketch]) float64 {
	var t float64
	for _, sh := range pt.Shards {
		for _, ks := range sh {
			t += ks.V.Estimate()
		}
	}
	return t
}

// noteImage records an aggregated image at the moment a fold consumes it
// as join input. Only consumed images count toward maxImage: the root
// image is the output itself, produced by the last fold but never fed
// into another one, so it does not price any fold's input side.
func (f *imageFolder[W]) noteImage(pt mpc.Part[KeySketch]) {
	if t := f.sumEst(pt); t > f.maxImage {
		f.maxImage = t
	}
}

// down returns, for every value a of attribute u reachable through edges
// other than skipEdge, the image sketch of a's subtree. ok is false when u
// has no such edges (u is a leaf from the parent's perspective).
func (f *imageFolder[W]) down(u hypergraph.Attr, skipEdge int) (mpc.Part[KeySketch], bool) {
	var acc mpc.Part[KeySketch]
	have := false
	for _, ei := range f.q.EdgesAt(u) {
		if ei == skipEdge {
			continue
		}
		e := f.q.Edges[ei]
		r := f.rels[e.Name]
		var contrib mpc.Part[KeySketch]
		if e.IsUnary() {
			// A unary edge only filters u: its image is the unit tuple.
			contrib = f.exists(r, u)
		} else {
			v := e.Other(u)
			sub, ok := f.down(v, ei)
			switch {
			case !ok && f.q.IsOutput(v):
				// Output leaf: the image per a is the distinct v values —
				// the §2.2 base case.
				sk, st := SketchValues(r, []dist.Attr{u}, []dist.Attr{v}, f.p)
				f.st = mpc.Seq(f.st, st)
				contrib = sk
			case !ok:
				// Non-output leaf: aggregation projects v away entirely, so
				// the subtree contributes existence only.
				contrib = f.exists(r, u)
			default:
				contrib = f.propagate(r, u, v, sub)
			}
		}
		if !have {
			acc, have = contrib, true
			continue
		}
		acc = f.product(acc, contrib)
	}
	return acc, have
}

// exists builds the existence image: every value of u present in r maps to
// the one-element unit image.
func (f *imageFolder[W]) exists(r dist.Rel[W], u hypergraph.Attr) mpc.Part[KeySketch] {
	uc := r.Cols(u)
	unit := hashItem("")
	singles := mpc.Map(r.Part, func(row relation.Row[W]) KeySketch {
		return KeySketch{Key: relation.EncodeKey(row.Vals, uc), V: SingletonVec(f.p, unit)}
	})
	red, st := mpc.ReduceByKey(singles,
		func(ks KeySketch) string { return ks.Key },
		func(a, b KeySketch) KeySketch { return KeySketch{Key: a.Key, V: MergeVec(a.V, b.V)} })
	f.st = mpc.Seq(f.st, st)
	return red
}

// propagate carries subtree images across the edge relation r(u,v):
// image(a) = ∪_{(a,b) ∈ r} image(b), with each image tagged by b first
// when v itself is an output attribute (the kept tuples then include b, so
// images reached through different b values are disjoint rather than
// merged). The size of the un-aggregated join — every row of r paired with
// its subtree image — is noted for the fold profile.
func (f *imageFolder[W]) propagate(r dist.Rel[W], u, v hypergraph.Attr, sub mpc.Part[KeySketch]) mpc.Part[KeySketch] {
	uc, vc := r.Cols(u), r.Cols(v)
	tagV := f.q.IsOutput(v)
	f.noteImage(sub)
	looked, st1 := mpc.LookupJoin(r.Part, sub,
		func(row relation.Row[W]) string { return relation.EncodeKey(row.Vals, vc) },
		func(ks KeySketch) string { return ks.Key })
	matched := mpc.Filter(looked, func(pr mpc.Pred[relation.Row[W], KeySketch]) bool { return pr.Found })
	var join float64
	for _, sh := range matched.Shards {
		for _, pr := range sh {
			join += pr.Y.V.Estimate()
		}
	}
	f.note(join)
	carried := mpc.Map(matched, func(pr mpc.Pred[relation.Row[W], KeySketch]) KeySketch {
		vec := pr.Y.V
		if tagV {
			vec = TagVec(vec, hashItem(pr.Y.Key))
		}
		return KeySketch{Key: relation.EncodeKey(pr.X.Vals, uc), V: vec}
	})
	red, st2 := mpc.ReduceByKey(carried,
		func(ks KeySketch) string { return ks.Key },
		func(a, b KeySketch) KeySketch { return KeySketch{Key: a.Key, V: MergeVec(a.V, b.V)} })
	f.st = mpc.Seq(f.st, st1, st2)
	return red
}

// product crosses two sibling images key-wise: the kept tuples of the
// combined subtree are the pairs, so the sketch is the pair sketch and the
// materialized sibling join — Σ_a |A_a|·|B_a| — is noted for the profile.
func (f *imageFolder[W]) product(a, b mpc.Part[KeySketch]) mpc.Part[KeySketch] {
	f.noteImage(a)
	f.noteImage(b)
	looked, st := mpc.LookupJoin(a, b,
		func(ks KeySketch) string { return ks.Key },
		func(ks KeySketch) string { return ks.Key })
	f.st = mpc.Seq(f.st, st)
	matched := mpc.Filter(looked, func(pr mpc.Pred[KeySketch, KeySketch]) bool { return pr.Found })
	var join float64
	for _, sh := range matched.Shards {
		for _, pr := range sh {
			join += pr.X.V.Estimate() * pr.Y.V.Estimate()
		}
	}
	f.note(join)
	return mpc.Map(matched, func(pr mpc.Pred[KeySketch, KeySketch]) KeySketch {
		return KeySketch{Key: pr.X.Key, V: ProductVec(pr.X.V, pr.Y.V)}
	})
}

// TagVec returns the sketch vector of the tagged set {tag} × S given the
// vector of S: every retained hash value is remixed with the tag, which
// preserves uniformity (tagged items rehash through the same mixer).
// Exact while the per-repetition sketches are unsaturated — the common
// case for the per-value images the fold tracks; a saturated sketch
// degrades to remixing a uniform sample of S, still an unbiased basis for
// the disjoint-union estimate the caller sums.
func TagVec(v Vec, tag uint64) Vec {
	out := Vec{Sk: make([]kmv.Sketch, len(v.Sk))}
	for i, s := range v.Sk {
		ns := kmv.New(s.K, s.Seed)
		for _, hv := range s.Vals {
			ns = ns.Insert(hv ^ (tag * 0x9e3779b97f4a7c15))
		}
		out.Sk[i] = ns
	}
	return out
}

// ProductVec returns the sketch vector of the pair set A × B by remixing
// every retained pair of hash values. Like TagVec it is exact while both
// inputs are unsaturated; saturated inputs yield a sampled approximation.
func ProductVec(a, b Vec) Vec {
	out := Vec{Sk: make([]kmv.Sketch, len(a.Sk))}
	for i := range a.Sk {
		sa, sb := a.Sk[i], b.Sk[i]
		ns := kmv.New(sa.K, sa.Seed)
		for _, ha := range sa.Vals {
			for _, hb := range sb.Vals {
				ns = ns.Insert(ha ^ (hb*0x9e3779b97f4a7c15 + 0x94d049bb133111eb))
			}
		}
		out.Sk[i] = ns
	}
	return out
}

// addSat and mulSat saturate at a large sentinel instead of wrapping:
// predicted sizes only feed cost comparisons, where "astronomically big"
// ranks the same as "bigger than any rival" and an overflowed negative
// would invert the ranking.
const satMax = math.MaxInt64 / 4

func addSat(a, b int64) int64 {
	if a > satMax-b {
		return satMax
	}
	return a + b
}

func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > satMax/b {
		return satMax
	}
	return a * b
}
