package mpcjoin_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mpcjoin"
	"mpcjoin/internal/semiring"
)

// diamond is a small fixed graph: 0→1 (w 1), 0→2 (w 10), 1→2 (w 1),
// 2→3 (w 1), plus an unreachable 4→0.
func diamond() []mpcjoin.GraphEdge {
	return []mpcjoin.GraphEdge{
		{Src: 0, Dst: 1, W: 1},
		{Src: 0, Dst: 2, W: 10},
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
		{Src: 4, Dst: 0, W: 1},
	}
}

func TestBFSLevels(t *testing.T) {
	res, err := mpcjoin.BFS(diamond(), 0, mpcjoin.WithServers(4), mpcjoin.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("BFS did not converge")
	}
	want := []mpcjoin.VertexRow{{0, 0}, {1, 1}, {2, 1}, {3, 2}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("levels = %v, want %v", res.Rows, want)
	}
	if res.Vertices != 5 || res.Edges != 5 {
		t.Fatalf("graph sizes %d/%d, want 5/5", res.Vertices, res.Edges)
	}
}

func TestSSSPDistances(t *testing.T) {
	res, err := mpcjoin.SSSP(diamond(), 0, mpcjoin.WithServers(4))
	if err != nil {
		t.Fatal(err)
	}
	want := []mpcjoin.VertexRow{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("distances = %v, want %v", res.Rows, want)
	}
	if _, err := mpcjoin.SSSP([]mpcjoin.GraphEdge{{Src: 0, Dst: 1, W: -2}}, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestPageRankPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var edges []mpcjoin.GraphEdge
	for i := 0; i < 400; i++ {
		edges = append(edges, mpcjoin.GraphEdge{
			Src: mpcjoin.Value(rng.Intn(80)), Dst: mpcjoin.Value(rng.Intn(80)), W: 1,
		})
	}
	res, err := mpcjoin.PageRank(edges,
		mpcjoin.WithServers(8), mpcjoin.WithDamping(0.9), mpcjoin.WithTolerance(1e-8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PageRank did not converge")
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += r.Rank
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ranks sum to %v", sum)
	}
}

func TestSpMVPublicAPI(t *testing.T) {
	// A 2×2 over IntSumProd: y = A·x with A = [[1 2],[0 3]], x = [10, 100].
	a := []mpcjoin.MatrixEntry[int64]{
		{Row: 0, Col: 0, W: 1}, {Row: 0, Col: 1, W: 2}, {Row: 1, Col: 1, W: 3},
	}
	x := []mpcjoin.VecEntry[int64]{{Idx: 0, Val: 10}, {Idx: 1, Val: 100}}
	res, err := mpcjoin.SpMV[int64](semiring.IntSumProd{}, a, x, mpcjoin.WithServers(4))
	if err != nil {
		t.Fatal(err)
	}
	want := []mpcjoin.VecEntry[int64]{{Idx: 0, Val: 210}, {Idx: 1, Val: 300}}
	if !reflect.DeepEqual(res.Entries, want) {
		t.Fatalf("y = %v, want %v", res.Entries, want)
	}
	if res.Stats.Rounds == 0 || res.Stats.MaxLoad == 0 {
		t.Fatalf("unmetered stats %+v", res.Stats)
	}
}

func TestIterOptionConflicts(t *testing.T) {
	edges := diamond()
	// Iterated knobs reject plain Execute.
	q := mpcjoin.NewQuery().Relation("R1", "A", "B").Relation("R2", "B", "C").GroupBy("A", "C")
	inst := mpcjoin.Instance[int64]{
		"R1": mpcjoin.NewRelation[int64]("A", "B"),
		"R2": mpcjoin.NewRelation[int64]("B", "C"),
	}
	inst["R1"].Add(1, 1, 2)
	inst["R2"].Add(1, 2, 3)
	if _, err := mpcjoin.Execute[int64](semiring.IntSumProd{}, q, inst, mpcjoin.WithMaxIters(3)); !errors.Is(err, mpcjoin.ErrOptionConflict) {
		t.Fatalf("Execute + WithMaxIters: err = %v, want ErrOptionConflict", err)
	}
	// Float-convergence knobs reject the exact-fixpoint drivers.
	if _, err := mpcjoin.BFS(edges, 0, mpcjoin.WithDamping(0.5)); !errors.Is(err, mpcjoin.ErrOptionConflict) {
		t.Fatalf("BFS + WithDamping: err = %v, want ErrOptionConflict", err)
	}
	if _, err := mpcjoin.SSSP(edges, 0, mpcjoin.WithTolerance(1e-6)); !errors.Is(err, mpcjoin.ErrOptionConflict) {
		t.Fatalf("SSSP + WithTolerance: err = %v, want ErrOptionConflict", err)
	}
	// Out-of-domain arguments fail descriptively.
	if _, err := mpcjoin.PageRank(edges, mpcjoin.WithDamping(1.5)); err == nil {
		t.Fatal("WithDamping(1.5) accepted")
	}
	if _, err := mpcjoin.BFS(edges, 0, mpcjoin.WithMaxIters(0)); err == nil {
		t.Fatal("WithMaxIters(0) accepted")
	}
}

func TestGraphBudgetAndTrace(t *testing.T) {
	// A 6-chain takes 5 BFS expansions; a budget of 2 cuts it off.
	var chain []mpcjoin.GraphEdge
	for i := 0; i < 5; i++ {
		chain = append(chain, mpcjoin.GraphEdge{Src: mpcjoin.Value(i), Dst: mpcjoin.Value(i + 1), W: 1})
	}
	res, err := mpcjoin.BFS(chain, 0, mpcjoin.WithServers(4), mpcjoin.WithMaxIters(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("budget-cut run reports Converged")
	}
	if len(res.Iterations) != 2 || len(res.Rows) != 3 {
		t.Fatalf("got %d iterations, %d rows; want 2, 3", len(res.Iterations), len(res.Rows))
	}

	// Traced run: per-iteration rounds visible, results unchanged.
	traced, err := mpcjoin.BFS(chain, 0, mpcjoin.WithServers(4), mpcjoin.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("WithTrace produced no rounds")
	}
	seen := false
	for _, r := range traced.Trace {
		if r.Op == "iter0.partials" {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("trace has no per-iteration exchange labels: %+v", traced.Trace)
	}
}

func TestGraphFaultInjectionTransparent(t *testing.T) {
	edges := diamond()
	clean, err := mpcjoin.SSSP(edges, 0, mpcjoin.WithServers(4), mpcjoin.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := mpcjoin.SSSP(edges, 0, mpcjoin.WithServers(4), mpcjoin.WithSeed(3),
		mpcjoin.WithFaults(mpcjoin.FaultSpec{DropProb: 0.2, MaxRetries: 16}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Rows, faulted.Rows) {
		t.Fatal("fault-injected SSSP rows differ from clean run")
	}
	if clean.Stats != faulted.Stats {
		t.Fatal("fault-injected SSSP Stats differ from clean run")
	}
	if faulted.Faults == nil || faulted.Faults.Injected == 0 {
		t.Fatalf("fault report missing or empty: %+v", faulted.Faults)
	}
}
