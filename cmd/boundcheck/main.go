// Command boundcheck runs the Table 1 load-bound regression checker: each
// query class (matmul linear/output-sensitive, star, line, tree) is
// executed on a controlled block workload across a sweep of cluster sizes
// and its measured MaxLoad is asserted to stay within a constant factor of
// the class's Table 1 formula. Exit status 1 on any violation.
//
//	boundcheck                      # full sizes, p ∈ {4,16,64}
//	boundcheck -quick -trace -json BOUND_trace.json
//	boundcheck -planner -quick -json PLAN_report.json
//
// -json writes every (class, p) result — including, under -trace, the
// per-round load timeline of each run — as indented JSON; CI uploads this
// file as an artifact so a bound violation ships with the round that
// caused it.
//
// -planner switches to the cost-based planner's dominated-engine check:
// per class instance and cluster size, StrategyAuto runs once and every
// legal candidate engine runs forced, and auto's measured MaxLoad must
// stay within a 1.1× tolerance of the best candidate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpcjoin/internal/experiments/boundcheck"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		quick    = flag.Bool("quick", false, "shrink instance sizes for a fast pass")
		psFlag   = flag.String("p", "4,16,64", "comma-separated cluster sizes to sweep")
		seed     = flag.Uint64("seed", 7, "randomness seed (runs are reproducible per seed)")
		slack    = flag.Float64("slack", 0, "override every class's slack constant (0 = per-class default)")
		trace    = flag.Bool("trace", false, "record per-round load timelines in the -json output")
		jsonOut  = flag.String("json", "", "write per-(class,p) results as JSON to this file")
		planOnly = flag.Bool("planner", false, "run the planner dominated-engine check instead of the Table 1 bounds")
	)
	flag.Parse()

	var ps []int
	for _, s := range strings.Split(*psFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "boundcheck: invalid -p entry %q\n", s)
			return 1
		}
		ps = append(ps, p)
	}

	cfg := boundcheck.Config{Quick: *quick, Ps: ps, Slack: *slack, Seed: *seed, Trace: *trace}
	if *planOnly {
		return runPlanner(cfg, *jsonOut)
	}
	results, err := boundcheck.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boundcheck: %v\n", err)
		return 1
	}

	fmt.Printf("%-15s %-5s %-8s %-8s %-8s %-10s %-7s %s\n",
		"class", "p", "N", "OUT", "load", "bound", "ratio", "ok")
	for _, r := range results {
		fmt.Printf("%-15s %-5d %-8d %-8d %-8d %-10.0f %-7.2f %v\n",
			r.Class, r.P, r.N, r.Out, r.MaxLoad, r.Bound, r.Ratio, r.OK)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = boundcheck.WriteJSON(f, results)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "boundcheck: writing %s: %v\n", *jsonOut, err)
			return 1
		}
	}

	if err := boundcheck.Check(results); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	fmt.Printf("all %d checks within their Table 1 bounds\n", len(results))
	return 0
}

// runPlanner is the -planner mode: the cost-based planner's
// dominated-engine sweep, printed per (instance, p) with every forced
// candidate's measured load next to auto's choice.
func runPlanner(cfg boundcheck.Config, jsonOut string) int {
	results, err := boundcheck.RunPlanner(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boundcheck: %v\n", err)
		return 1
	}

	fmt.Printf("%-15s %-5s %-8s %-17s %-9s %-9s %-17s %-7s %s\n",
		"instance", "p", "N", "chosen", "predicted", "auto", "best", "ratio", "ok")
	for _, r := range results {
		fmt.Printf("%-15s %-5d %-8d %-17s %-9.0f %-9d %-17s %-7.2f %v\n",
			r.Name, r.P, r.N, r.Chosen, r.Predicted, r.AutoLoad,
			fmt.Sprintf("%s=%d", r.Best, r.BestLoad), r.Ratio, r.OK)
		for _, c := range r.Candidates {
			fmt.Printf("    %-20s load=%-8d predicted=%.0f\n", c.Engine, c.MaxLoad, c.Predicted)
		}
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err == nil {
			err = boundcheck.WritePlanJSON(f, results)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "boundcheck: writing %s: %v\n", jsonOut, err)
			return 1
		}
	}

	if err := boundcheck.CheckPlanner(results); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	fmt.Printf("auto within %.2f× of the best forced candidate on all %d instances\n",
		results[0].Slack, len(results))
	return 0
}
