// Command mpcbench regenerates the experiments of the Hu–Yi PODS'20
// reproduction: every Table 1 row, the Theorem 1 branch crossover and
// unequal-size sweep, the p-scaling exponent fits, the Theorem 2/3
// lower-bound audits, the Figure 1/2 reproductions, the §2.2 estimator
// accuracy check, and the locality/packing ablations.
//
// Usage:
//
//	mpcbench -list
//	mpcbench -experiment all            # full-size run (minutes)
//	mpcbench -experiment T1-MM-load,LB-Thm3 -quick
//	mpcbench -experiment T1-MM-load -workers 8 -json BENCH_runtime.json
//
// -workers sizes the concurrent execution runtime (default: one worker
// per CPU); it changes wall-clock time only — metered loads are identical
// for every worker count. -json appends one row per (experiment, data
// point) with the measured wall-clock time and the runtime's worker count
// to the given file. -trace additionally embeds each benched run's
// per-round load timeline (op, per-server load distribution, bytes) in
// the JSON rows; tracing never changes loads, rounds or results.
//
// -explain embeds the plan each benched run executed in the -json rows'
// "plan" field. The plan's chosen engine always names the engine the row's
// metered stats came from; runs that went through the cost-based planner
// additionally carry every legal candidate with its predicted load, while
// experiments that pin their section's engine record a forced plan. The
// full ranked-candidate sweep lives in `boundcheck -planner`:
//
//	mpcbench -experiment T1-Line-load -quick -explain -json BENCH_plan.json
//
// -faults runs every benched engine execution under a deterministic
// fault schedule (see experiments.ParseFaultSpec for the key=value
// grammar). Absorbed schedules leave every table and verification
// identical to the fault-free run — the per-run injection/retry
// accounting lands in the -json rows' "faults" field.
//
// -transport tcp carries every benched engine run's exchange rounds over
// the TCP backend — by default through three loopback shuffle peers the
// process boots itself, or through an already-running peer tier named by
// -transport-peers. Row exchanges ship the columnar dictionary-encoded
// payload (internal/relation's wire columns); peers are payload-opaque,
// so the frame format is unchanged. The verification baseline stays
// in-process, so every "verified" column doubles as a cross-transport
// bit-identity check; loads and tables are identical, only wall-clock
// changes:
//
//	mpcbench -experiment all -quick -transport tcp -json BENCH_transport.json
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (the memory profile is a heap snapshot taken after the runs,
// with allocation sites recorded); inspect with `go tool pprof`. See the
// README's profiling quick-start.
//
// -service switches mpcbench from the paper experiments to the serving
// plane: it boots an in-process mpcd server and drives it closed-loop
// over real HTTP with Zipf-popular queries and a two-tenant flood (see
// internal/servicebench), reporting per-scenario latency percentiles,
// throughput, cache hit ratio and shed rate plus the derived
// cache-speedup, register-churn and tenant-isolation figures:
//
//	mpcbench -service -json BENCH_service.json
//	mpcbench -service -quick
//
// -graph selects only the iterated graph-analytics experiments — the
// BFS/SSSP/PageRank drivers over a seeded power-law graph, checking each
// driver iteration's max-load against the Table 1 matmul formula:
//
//	mpcbench -graph -quick -json BENCH_graph.json
//
// -quick shrinks the dataset and duration for a fast CI pass; -workers
// sizes the closed-loop client pool and -seed the query generators.
//
// Every experiment verifies its results against the distributed
// Yannakakis baseline (or the sequential reference) as it runs; a
// "MISMATCH" in any verified column is a bug.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mpcjoin/internal/experiments"
	"mpcjoin/internal/servicebench"
	"mpcjoin/internal/transport"
)

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile writers execute before the
// process exits (os.Exit skips defers).
func run() int {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		exper   = flag.String("experiment", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "shrink instance sizes for a fast pass")
		seed    = flag.Uint64("seed", 7, "randomness seed (runs are reproducible per seed)")
		workers = flag.Int("workers", -1, "concurrent runtime workers (1 = serial, <=0 = one per CPU)")
		jsonOut = flag.String("json", "", "write per-experiment benchmark rows as JSON to this file")
		trace   = flag.Bool("trace", false, "record per-round load timelines in the -json rows")
		explain = flag.Bool("explain", false, "record each benched run's executed cost-based plan in the -json rows")
		faults  = flag.String("faults", "", "run benched engines under a deterministic fault schedule, e.g. crash=0.05,drop=0.05,straggler=0.2,retries=6")
		trans   = flag.String("transport", "inproc", "exchange transport for benched engine runs: inproc or tcp")
		tpeers  = flag.String("transport-peers", "", "comma-separated shuffle peer addresses for -transport tcp (default: boot 3 loopback peers in-process)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProf = flag.String("memprofile", "", "write a heap profile (post-run snapshot) to this file")
		service = flag.Bool("service", false, "benchmark the serving plane (cache, coalescing, tenant fairness) instead of the paper experiments")
		graph   = flag.Bool("graph", false, "run only the iterated graph-analytics experiments (BFS/SSSP/PageRank per-iteration load sweep)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: starting CPU profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpcbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mpcbench: writing heap profile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}

	if *service {
		return runService(*quick, *seed, *workers, *jsonOut)
	}

	var ids []string
	switch {
	case *graph:
		ids = experiments.GraphIDs()
	case *exper == "all":
		ids = experiments.IDs()
	default:
		ids = strings.Split(*exper, ",")
	}

	faultSpec, err := experiments.ParseFaultSpec(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcbench: %v\n", err)
		return 2
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers, Trace: *trace, Explain: *explain, Faults: faultSpec}
	switch *trans {
	case "", "inproc":
	case "tcp":
		addrs := splitList(*tpeers)
		if len(addrs) == 0 {
			for i := 0; i < 3; i++ {
				p, err := transport.ListenPeer("127.0.0.1:0")
				if err != nil {
					fmt.Fprintf(os.Stderr, "mpcbench: booting loopback peer: %v\n", err)
					return 1
				}
				defer p.Close()
				addrs = append(addrs, p.Addr())
			}
			fmt.Fprintf(os.Stderr, "mpcbench: exchanging over tcp via %d loopback shuffle peers\n", len(addrs))
		}
		cfg.Transport = transport.TCP(addrs...)
	default:
		fmt.Fprintf(os.Stderr, "mpcbench: unknown -transport %q (want inproc or tcp)\n", *trans)
		return 2
	}
	failed := false
	var bench []experiments.BenchRow
	for _, id := range ids {
		id = strings.TrimSpace(id)
		t0 := time.Now()
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: %v\n", err)
			failed = true
			continue
		}
		out := tab.Format()
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
		if strings.Contains(out, "MISMATCH") {
			fmt.Fprintf(os.Stderr, "mpcbench: %s: verification MISMATCH\n", id)
			failed = true
		}
		bench = append(bench, tab.Bench...)
	}
	if *jsonOut != "" {
		if bench == nil {
			bench = []experiments.BenchRow{} // marshal as [], not null
		}
		buf, err := json.MarshalIndent(bench, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: writing %s: %v\n", *jsonOut, err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// runService runs the serving-plane benchmark (mpcbench -service) and
// writes the report to jsonOut when given.
func runService(quick bool, seed uint64, workers int, jsonOut string) int {
	opts := servicebench.Options{Seed: int64(seed)}
	if workers > 0 {
		opts.Workers = workers
	}
	if quick {
		// The CI smoke scale: small dataset, short windows. DatasetN must
		// still make one execution cost tens of milliseconds, or the
		// flood scenario cannot build admission pressure (see the
		// servicebench smoke test).
		opts.Duration = 400 * time.Millisecond
		opts.Population = 16
		opts.DatasetN = 1600
		opts.DatasetDom = 40
		if workers <= 0 {
			opts.Workers = 4
		}
	}
	rep, err := servicebench.Run(opts, func(format string, args ...any) {
		fmt.Printf("mpcbench: service: "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcbench: service: %v\n", err)
		return 1
	}
	fmt.Printf("mpcbench: service: cache p99 speedup %.1fx, qps gain %.1fx, churn failed %d, quiet p99 ratio %.2fx, flood shed rate %.2f\n",
		rep.CacheP99SpeedupX, rep.CacheQPSGainX, rep.RegisterChurnFailed, rep.FloodQuietP99RatioX, rep.FloodShedRate)
	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: writing %s: %v\n", jsonOut, err)
			return 1
		}
	}
	if rep.RegisterChurnFailed != 0 {
		fmt.Fprintf(os.Stderr, "mpcbench: service: %d queries failed under registration churn (want 0)\n", rep.RegisterChurnFailed)
		return 1
	}
	return 0
}

// splitList parses a comma-separated address list, tolerating whitespace
// and empty segments from trailing commas.
func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
