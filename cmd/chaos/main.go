// Command chaos runs the fault-resilience sweep: every engine (matmul,
// star, line, tree, yannakakis, hypercube) executes under a matrix of
// deterministic fault schedules — crashes, message drops, stragglers,
// mixtures, and one schedule built to exhaust the retry budget. A
// retryable schedule must be absorbed bit-identically (same rows, same
// base stats as the fault-free run); the budget schedule must fail with
// the typed fault-budget error. Exit status 1 on any violation.
//
//	chaos                           # full sizes, p=8
//	chaos -quick -workers 4 -json CHAOS_report.json
//	chaos -quick -transport tcp -json CHAOS_tcp_report.json
//
// -transport tcp carries every faulted run's exchange rounds over the TCP
// backend — through three loopback shuffle peers the process boots itself,
// or an already-running tier named by -transport-peers. Faults then happen
// physically (frames elided before the socket, inboxes discarded
// peer-side) while each engine's fault-free baseline stays in-process, so
// the sweep's bit-identity judgement is cross-transport.
//
// -json writes every (engine, scenario) result — row fingerprints, base
// stats, and the fault plane's injection/retry accounting — as indented
// JSON; CI uploads this file as an artifact so a resilience regression
// ships with the schedule that exposed it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcjoin/internal/experiments/chaos"
	"mpcjoin/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		quick   = flag.Bool("quick", false, "shrink instance sizes for a fast pass")
		p       = flag.Int("p", 8, "simulated cluster size")
		seed    = flag.Uint64("seed", 1, "randomness seed (runs are reproducible per seed)")
		workers = flag.Int("workers", 0, "OS workers per run (0 = serial; results must not depend on this)")
		jsonOut = flag.String("json", "", "write per-(engine,scenario) results as JSON to this file")
		trans   = flag.String("transport", "inproc", "exchange transport for faulted runs: inproc or tcp")
		tpeers  = flag.String("transport-peers", "", "comma-separated shuffle peer addresses for -transport tcp (default: boot 3 loopback peers in-process)")
	)
	flag.Parse()

	cfg := chaos.Config{Quick: *quick, P: *p, Seed: *seed, Workers: *workers}
	switch *trans {
	case "", "inproc":
	case "tcp":
		var addrs []string
		for _, a := range strings.Split(*tpeers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			for i := 0; i < 3; i++ {
				pr, err := transport.ListenPeer("127.0.0.1:0")
				if err != nil {
					fmt.Fprintf(os.Stderr, "chaos: booting loopback peer: %v\n", err)
					return 1
				}
				defer pr.Close()
				addrs = append(addrs, pr.Addr())
			}
			fmt.Fprintf(os.Stderr, "chaos: exchanging over tcp via %d loopback shuffle peers\n", len(addrs))
		}
		cfg.Transport = transport.TCP(addrs...)
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown -transport %q (want inproc or tcp)\n", *trans)
		return 2
	}
	results, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}

	fmt.Printf("%-11s %-17s %-6s %-9s %-9s %-9s %-9s %-7s %s\n",
		"engine", "scenario", "rows", "injected", "detected", "retried", "absorbed", "budget", "ok")
	for _, r := range results {
		fmt.Printf("%-11s %-17s %-6d %-9d %-9d %-9d %-9d %-7v %v\n",
			r.Engine, r.Scenario, r.Rows, r.Injected, r.Detected, r.Retried, r.Absorbed, r.BudgetErr, r.OK)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = chaos.WriteJSON(f, results)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: writing %s: %v\n", *jsonOut, err)
			return 1
		}
	}

	if err := chaos.Check(results); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	fmt.Printf("all %d engine/scenario cells recovered or failed as specified\n", len(results))
	return 0
}
