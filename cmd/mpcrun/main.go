// Command mpcrun evaluates a join-aggregate query over TSV relations on
// the simulated MPC cluster and reports the answer alongside the model's
// cost measures (rounds, load, total communication).
//
// Usage:
//
//	datagen -query line3 -kind blocks -blocks 16 -fan 4 -out /tmp/ln
//	mpcrun -data /tmp/ln -p 16
//	mpcrun -data /tmp/ln -p 16 -engine yannakakis    # the baseline
//	mpcrun -data /tmp/ln -p 16 -workers 8            # concurrent simulator
//
// -workers sizes the concurrent execution runtime the per-server work runs
// on (default: one worker per CPU). It affects the reported wall-clock time
// only; the answer and the metered cost are identical for every setting.
//
// The data directory holds query.txt plus one <relation>.tsv per relation
// (see internal/textio for the format). Annotations are integers under the
// counting semiring (+, ×).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
	xrt "mpcjoin/internal/runtime"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/textio"
)

func main() {
	var (
		data   = flag.String("data", "", "directory with query.txt and <rel>.tsv files (required)")
		p      = flag.Int("p", 16, "number of simulated servers")
		engine = flag.String("engine", "auto", "auto|yannakakis|tree")
		seed   = flag.Uint64("seed", 1, "randomness seed")
		limit   = flag.Int("limit", 10, "print at most this many result rows (0 = none)")
		verify  = flag.Bool("verify", false, "also run the Yannakakis baseline and cross-check the answers")
		workers = flag.Int("workers", -1, "concurrent runtime workers (1 = serial, <=0 = one per CPU)")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "mpcrun: -data is required")
		os.Exit(2)
	}

	q, inst, err := textio.ReadInstance(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		os.Exit(1)
	}

	// The loaded instance is executed once, so hand its rows over to the
	// execution — unless -verify re-runs it through the baseline.
	opts := core.Options{Servers: *p, Seed: *seed, Workers: *workers, OwnInput: !*verify}
	switch *engine {
	case "auto":
	case "yannakakis":
		opts.Strategy = core.StrategyYannakakis
	case "tree":
		opts.Strategy = core.StrategyTree
	default:
		fmt.Fprintf(os.Stderr, "mpcrun: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	pl, err := core.PlanQuery(q, opts.Strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		os.Exit(1)
	}

	n := 0
	for _, e := range q.Edges {
		n += inst[e.Name].Len()
	}
	fmt.Printf("query: %d relations, outputs %v, class %s, engine %s\n",
		len(q.Edges), q.Output, pl.Class, pl.Engine)
	fmt.Printf("input: N = %d tuples across %d servers\n", n, *p)

	t0 := time.Now()
	res, st, err := core.Execute(semiring.IntSumProd{}, q, inst, opts)
	wall := time.Since(t0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		os.Exit(1)
	}
	res.SortRows()

	fmt.Printf("result: OUT = %d tuples\n", res.Len())
	fmt.Printf("cost:   rounds = %d, load L = %d, total communication = %d units\n",
		st.Rounds, st.MaxLoad, st.TotalComm)
	fmt.Printf("wall:   %v (workers = %d)\n", wall.Round(time.Microsecond), effectiveWorkers(*workers))
	if *limit > 0 {
		fmt.Printf("rows (first %d):\n", *limit)
		for i, row := range res.Rows {
			if i >= *limit {
				fmt.Printf("  … %d more\n", res.Len()-*limit)
				break
			}
			fmt.Printf("  %v  ⊕-annotation %d\n", row.Vals, row.W)
		}
	}

	if *verify {
		verifyBaseline(q, inst, *p, *seed, res)
	}
}

// effectiveWorkers reports the worker count the -workers flag resolves to.
func effectiveWorkers(n int) int {
	if n <= 0 {
		n = 0 // runtime.New(0) sizes to GOMAXPROCS
	}
	return xrt.New(n).Workers()
}

func verifyBaseline(q *hypergraph.Query, inst db.Instance[int64], p int, seed uint64, res *relation.Relation[int64]) {
	base, stB, err := core.Execute(semiring.IntSumProd{}, q, inst,
		core.Options{Servers: p, Strategy: core.StrategyYannakakis, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun: baseline:", err)
		os.Exit(1)
	}
	sr := semiring.IntSumProd{}
	if relation.Equal[int64](sr, sr.Equal, res, base) {
		fmt.Printf("verify: answers match the Yannakakis baseline (baseline load L = %d)\n", stB.MaxLoad)
	} else {
		fmt.Fprintln(os.Stderr, "verify: MISMATCH against the Yannakakis baseline")
		os.Exit(1)
	}
}
