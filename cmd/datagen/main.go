// Command datagen emits workload instances as a query spec plus TSV
// relations (the format cmd/mpcrun consumes).
//
// Usage:
//
//	datagen -query matmul -kind blocks -blocks 64 -fan 8 -out /tmp/mm
//	datagen -query line3  -kind zipf   -n 4096 -dom 512 -s 1.4 -out /tmp/ln
//	datagen -query fig3   -kind multi  -blocks 32 -fan 2 -mult 4 -out /tmp/tw
//	datagen -kind graph   -n 10000 -degree 8 -s 1.3 -maxw 100 -out /tmp/g
//
// Queries: matmul, line3, line4, star3, star4, fig1 (the paper's Figure 1
// star-like query), fig2 (the Figure 2 tree), fig3 (the Figure 3 twig).
// Kinds: blocks (exact OUT = blocks·fan^{|y|}), multi (blocks plus a
// multiplicity on non-output attributes), uniform, zipf, graph (a
// power-law edge relation E(S, D) for the iterated BFS/SSSP/PageRank
// drivers; -query is ignored, -n counts vertices).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/textio"
	"mpcjoin/internal/workload"
)

func main() {
	var (
		query  = flag.String("query", "matmul", "matmul|line3|line4|star3|star4|fig1|fig2|fig3 (ignored for -kind graph)")
		kind   = flag.String("kind", "blocks", "blocks|multi|uniform|zipf|graph")
		blocks = flag.Int("blocks", 64, "blocks (blocks/multi kinds)")
		fan    = flag.Int("fan", 4, "output-attribute fan per block")
		mult   = flag.Int("mult", 2, "non-output multiplicity (multi kind)")
		n      = flag.Int("n", 4096, "tuples per relation (uniform/zipf); vertices (graph)")
		dom    = flag.Int("dom", 512, "domain size (uniform/zipf)")
		s      = flag.Float64("s", 1.4, "Zipf exponent (> 1; zipf/graph kinds)")
		degree = flag.Float64("degree", 8, "average out-degree (graph kind, >= 1)")
		maxw   = flag.Int64("maxw", 100, "max edge weight (graph kind, >= 1)")
		seed   = flag.Int64("seed", 1, "randomness seed")
		out    = flag.String("out", "", "output directory (required)")
	)
	flag.Parse()
	if *out == "" {
		usageError("-out is required")
	}

	rng := rand.New(rand.NewSource(*seed))
	var q *hypergraph.Query
	var inst db.Instance[int64]
	var meta workload.Meta
	var err error

	if *kind == "graph" {
		q = workload.GraphQuery()
		inst, meta, err = workload.PowerLawGraph(*n, *degree, *s, *maxw, rng)
		if err != nil {
			usageError(err.Error())
		}
	} else {
		q, err = queryByName(*query)
		if err != nil {
			usageError(err.Error())
		}
		switch *kind {
		case "blocks":
			inst, meta = workload.Blocks(q, *blocks, *fan)
		case "multi":
			inst, meta = workload.BlocksMulti(q, *blocks, *fan, *mult)
		case "uniform":
			inst, meta = workload.Uniform(q, *n, *dom, rng)
		case "zipf":
			// Parameter errors (s <= 1, dom < 2) are usage errors, not
			// panics out of rand.NewZipf.
			inst, meta, err = workload.Zipf(q, *n, *dom, *s, rng)
			if err != nil {
				usageError(err.Error())
			}
		default:
			usageError(fmt.Sprintf("unknown kind %q", *kind))
		}
	}

	if err := textio.WriteInstance(*out, q, inst); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d relations, %s\n", *out, len(q.Edges), meta.Describe())
}

// usageError reports a bad invocation on stderr and exits with the
// conventional usage status. Generator parameter errors land here too
// (errors.Is workload.ErrInvalidParam) — they mean the flags, not the
// program, are wrong.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "datagen:", msg)
	os.Exit(2)
}

func queryByName(name string) (*hypergraph.Query, error) {
	switch name {
	case "matmul":
		return hypergraph.MatMulQuery(), nil
	case "line3":
		return hypergraph.LineQuery(3), nil
	case "line4":
		return hypergraph.LineQuery(4), nil
	case "star3":
		return hypergraph.StarQuery(3), nil
	case "star4":
		return hypergraph.StarQuery(4), nil
	case "fig1":
		return hypergraph.Fig1StarLike(), nil
	case "fig2":
		return hypergraph.Fig2Tree(), nil
	case "fig3":
		return hypergraph.Fig3Twig(), nil
	}
	return nil, fmt.Errorf("unknown query %q", name)
}
