// Command mpcd serves join-aggregate queries over the simulated MPC engine
// as a long-lived HTTP/JSON service: register datasets once, query them
// concurrently with per-request strategy, cluster size, semiring, worker
// pool and deadline. See internal/server for the HTTP surface.
//
//	mpcd -addr :8080
//
// Cluster mode turns the single process into a real multi-process
// deployment. Shuffle peers serve the exchange data plane:
//
//	mpcd -peer -addr 127.0.0.1:9101
//	mpcd -peer -addr 127.0.0.1:9102
//
// and a coordinator serves the HTTP API, delegating every query's
// exchange rounds to the peers over TCP:
//
//	mpcd -addr :8080 -peers 127.0.0.1:9101,127.0.0.1:9102
//
// Results, metered Stats, traces and fault reports are bit-for-bit
// identical to the single-process run (see internal/transport).
//
// The daemon drains gracefully on SIGTERM/SIGINT: new queries are shed
// with 503 while in-flight queries run to completion (bounded by
// -drain-timeout), then the process exits. A -peer process closes its
// listener and live connections on the same signals.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"mpcjoin/internal/server"
	"mpcjoin/internal/transport"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		capacity      = flag.Int64("capacity", 0, "admission capacity in worker units (0 = GOMAXPROCS)")
		maxQueue      = flag.Int("max-queue", 64, "bounded admission queue length; beyond it queries get 429")
		tenantQueue   = flag.Int("tenant-queue", 0, "per-tenant bound on the admission queue (0 = max-queue)")
		tenantWeights = flag.String("tenant-weights", "", "per-tenant fair-dequeue shares, e.g. 'gold=3,free=1' (unlisted tenants get 1)")
		cacheEntries  = flag.Int("cache-entries", 0, "result cache size in entries (0 = default 256, negative disables caching)")
		logFormat     = flag.String("log-format", "text", "per-query access log format: 'text', 'json', or 'none'")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight queries on shutdown")
		pprofFlag     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		peerMode      = flag.Bool("peer", false, "run as a cluster shuffle peer instead of the HTTP service")
		peers         = flag.String("peers", "", "comma-separated peer addresses; queries exchange over TCP through them (coordinator mode)")
	)
	flag.Parse()

	if *peerMode {
		runPeer(*addr)
		return
	}

	// Every request context derives from baseCtx; it is also the server's
	// BaseContext, so cancelling it stops in-flight and coalesced-shared
	// executions at their next simulated round barrier — the drain path's
	// last resort when queries outlive the drain window.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()

	cfg := server.Config{
		Capacity:     *capacity,
		MaxQueue:     *maxQueue,
		TenantQueue:  *tenantQueue,
		CacheEntries: *cacheEntries,
		EnablePprof:  *pprofFlag,
		BaseContext:  baseCtx,
	}
	if *tenantWeights != "" {
		weights, err := parseTenantWeights(*tenantWeights)
		if err != nil {
			log.Fatalf("mpcd: -tenant-weights: %v", err)
		}
		cfg.TenantWeights = weights
	}
	if al := accessLogger(*logFormat); al != nil {
		cfg.AccessLog = al
	} else if *logFormat != "none" {
		log.Fatalf("mpcd: -log-format must be text, json or none, got %q", *logFormat)
	}
	if *peers != "" {
		list := splitPeers(*peers)
		cfg.Transport = transport.TCP(list...)
		log.Printf("mpcd: coordinator mode, exchanging over tcp via %d peers: %s", len(list), strings.Join(list, ", "))
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mpcd: listen %s: %v", *addr, err)
	}
	// The resolved address line is machine-readable on purpose: harness
	// scripts pass -addr :0 and scrape the chosen port from stdout.
	fmt.Printf("mpcd listening on %s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		log.Fatalf("mpcd: serve: %v", err)
	}

	// Graceful drain: flip the drain flag first so keep-alive connections
	// see 503 on new queries, then let Shutdown wait for in-flight ones.
	log.Printf("mpcd: draining (up to %v)", *drainTimeout)
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("mpcd: shutdown: %v", err)
			os.Exit(1)
		}
		// In-flight queries outlived the drain window: cancel them (they
		// stop at the next round barrier and record cause "drain" since
		// the server is draining), then force-close the connections. The
		// short wait lets handlers finish recording their metrics.
		log.Printf("mpcd: drain timeout, cancelling in-flight queries")
		cancelBase()
		waitUntil := time.Now().Add(5 * time.Second)
		for srv.Metrics().Snapshot().InFlight > 0 && time.Now().Before(waitUntil) {
			time.Sleep(10 * time.Millisecond)
		}
		_ = httpSrv.Close()
	}
	snap := srv.Metrics().Snapshot()
	causes := ""
	for _, c := range snap.Cancel {
		causes += fmt.Sprintf(" %s=%d", c.Name, c.Count)
	}
	log.Printf("mpcd: drained, exiting (completed=%d cancelled=%d%s)", snap.Completed, snap.Cancelled, causes)
}

// parseTenantWeights parses the -tenant-weights list ("gold=3,free=1").
func parseTenantWeights(s string) (map[string]int64, error) {
	weights := make(map[string]int64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("want tenant=weight, got %q", part)
		}
		w, err := strconv.ParseInt(val, 10, 64)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("weight of %q must be a positive integer, got %q", name, val)
		}
		weights[name] = w
	}
	return weights, nil
}

// accessLogger builds the per-query access-log sink for -log-format, or
// nil for "none" and unknown formats (the caller rejects the latter).
// Both formats emit one line per query to stderr through the standard
// logger, serialized by a mutex so concurrent queries never interleave
// mid-line.
func accessLogger(format string) func(server.AccessEntry) {
	var mu sync.Mutex
	switch format {
	case "json":
		return func(e server.AccessEntry) {
			line, err := json.Marshal(e)
			if err != nil {
				return
			}
			mu.Lock()
			log.Printf("query %s", line)
			mu.Unlock()
		}
	case "text":
		return func(e server.AccessEntry) {
			mu.Lock()
			log.Printf("query path=%s tenant=%s status=%d cause=%s engine=%s version=%d hit=%v coalesced=%v queue=%s wall=%s",
				e.Path, e.Tenant, e.Status, orDash(e.Cause), orDash(e.Engine), e.DatasetVersion,
				e.CacheHit, e.Coalesced, time.Duration(e.QueueNS), time.Duration(e.WallNS))
			mu.Unlock()
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// splitPeers parses the -peers list, tolerating whitespace and empty
// segments from trailing commas.
func splitPeers(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runPeer serves the exchange data plane on addr until SIGTERM/SIGINT.
func runPeer(addr string) {
	p, err := transport.ListenPeer(addr)
	if err != nil {
		log.Fatalf("mpcd: peer listen %s: %v", addr, err)
	}
	// Machine-readable, like the coordinator's line: cluster scripts pass
	// -addr 127.0.0.1:0 and scrape the chosen port.
	fmt.Printf("mpcd peer listening on %s\n", p.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()

	st := p.Stats()
	p.Close()
	log.Printf("mpcd: peer exiting (rounds=%d retries=%d msgs=%d units=%d bytes=%d crashes=%d)",
		st.Rounds, st.Retries, st.Msgs, st.Units, st.Bytes, st.Crashes)
}
