// Command mpcd serves join-aggregate queries over the simulated MPC engine
// as a long-lived HTTP/JSON service: register datasets once, query them
// concurrently with per-request strategy, cluster size, semiring, worker
// pool and deadline. See internal/server for the HTTP surface.
//
//	mpcd -addr :8080
//
// Cluster mode turns the single process into a real multi-process
// deployment. Shuffle peers serve the exchange data plane:
//
//	mpcd -peer -addr 127.0.0.1:9101
//	mpcd -peer -addr 127.0.0.1:9102
//
// and a coordinator serves the HTTP API, delegating every query's
// exchange rounds to the peers over TCP:
//
//	mpcd -addr :8080 -peers 127.0.0.1:9101,127.0.0.1:9102
//
// Results, metered Stats, traces and fault reports are bit-for-bit
// identical to the single-process run (see internal/transport).
//
// The daemon drains gracefully on SIGTERM/SIGINT: new queries are shed
// with 503 while in-flight queries run to completion (bounded by
// -drain-timeout), then the process exits. A -peer process closes its
// listener and live connections on the same signals.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpcjoin/internal/server"
	"mpcjoin/internal/transport"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		capacity     = flag.Int64("capacity", 0, "admission capacity in worker units (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 64, "bounded admission queue length; beyond it queries get 429")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight queries on shutdown")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		peerMode     = flag.Bool("peer", false, "run as a cluster shuffle peer instead of the HTTP service")
		peers        = flag.String("peers", "", "comma-separated peer addresses; queries exchange over TCP through them (coordinator mode)")
	)
	flag.Parse()

	if *peerMode {
		runPeer(*addr)
		return
	}

	cfg := server.Config{Capacity: *capacity, MaxQueue: *maxQueue, EnablePprof: *pprofFlag}
	if *peers != "" {
		list := splitPeers(*peers)
		cfg.Transport = transport.TCP(list...)
		log.Printf("mpcd: coordinator mode, exchanging over tcp via %d peers: %s", len(list), strings.Join(list, ", "))
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mpcd: listen %s: %v", *addr, err)
	}
	// The resolved address line is machine-readable on purpose: harness
	// scripts pass -addr :0 and scrape the chosen port from stdout.
	fmt.Printf("mpcd listening on %s\n", ln.Addr())

	// Every request context derives from baseCtx, so cancelling it stops
	// in-flight queries at their next simulated round barrier — the drain
	// path's last resort when queries outlive the drain window.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	httpSrv := &http.Server{
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		log.Fatalf("mpcd: serve: %v", err)
	}

	// Graceful drain: flip the drain flag first so keep-alive connections
	// see 503 on new queries, then let Shutdown wait for in-flight ones.
	log.Printf("mpcd: draining (up to %v)", *drainTimeout)
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("mpcd: shutdown: %v", err)
			os.Exit(1)
		}
		// In-flight queries outlived the drain window: cancel them (they
		// stop at the next round barrier and record cause "drain" since
		// the server is draining), then force-close the connections. The
		// short wait lets handlers finish recording their metrics.
		log.Printf("mpcd: drain timeout, cancelling in-flight queries")
		cancelBase()
		waitUntil := time.Now().Add(5 * time.Second)
		for srv.Metrics().Snapshot().InFlight > 0 && time.Now().Before(waitUntil) {
			time.Sleep(10 * time.Millisecond)
		}
		_ = httpSrv.Close()
	}
	snap := srv.Metrics().Snapshot()
	causes := ""
	for _, c := range snap.Cancel {
		causes += fmt.Sprintf(" %s=%d", c.Name, c.Count)
	}
	log.Printf("mpcd: drained, exiting (completed=%d cancelled=%d%s)", snap.Completed, snap.Cancelled, causes)
}

// splitPeers parses the -peers list, tolerating whitespace and empty
// segments from trailing commas.
func splitPeers(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runPeer serves the exchange data plane on addr until SIGTERM/SIGINT.
func runPeer(addr string) {
	p, err := transport.ListenPeer(addr)
	if err != nil {
		log.Fatalf("mpcd: peer listen %s: %v", addr, err)
	}
	// Machine-readable, like the coordinator's line: cluster scripts pass
	// -addr 127.0.0.1:0 and scrape the chosen port.
	fmt.Printf("mpcd peer listening on %s\n", p.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()

	st := p.Stats()
	p.Close()
	log.Printf("mpcd: peer exiting (rounds=%d retries=%d msgs=%d units=%d bytes=%d crashes=%d)",
		st.Rounds, st.Retries, st.Msgs, st.Units, st.Bytes, st.Crashes)
}
