package main

// TestClusterSmoke is the multi-process cluster lane: build the daemon
// with the race detector, boot two shuffle peers and a coordinator on
// ephemeral ports, register a dataset, run one query per strategy whose
// exchange rounds travel over real TCP, compare every answer against an
// in-process golden run of the same query, absorb a fault schedule over
// the wire, and drain everything with SIGTERM. `make cluster-smoke` runs
// exactly this test.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// bootProc starts bin with args, waits for the "listening on" line with
// the given prefix, and returns the scraped address. The process is
// SIGTERMed (then killed) and waited on at cleanup.
func bootProc(t *testing.T, bin, prefix string, args ...string) (addr string, term func() error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var exitErr error
	exited := make(chan struct{})
	go func() { exitErr = cmd.Wait(); close(exited) }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-exited
	})

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), prefix); ok {
			addr = strings.TrimSpace(a)
			break
		}
	}
	if addr == "" {
		t.Fatalf("%s never reported its address: %v", strings.Join(cmd.Args, " "), sc.Err())
	}
	go func() { // drain remaining output so the child never blocks
		for sc.Scan() {
		}
	}()

	return addr, func() error {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		select {
		case <-exited:
			return exitErr
		case <-time.After(60 * time.Second):
			return fmt.Errorf("process did not exit after SIGTERM")
		}
	}
}

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e smoke in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mpcd")
	build := exec.Command("go", "build", "-race", "-o", bin, "mpcjoin/cmd/mpcd")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Two shuffle peers, then two coordinators over them: one exchanging
	// over TCP and one plain in-process golden, so every comparison below
	// is cross-transport on identical inputs.
	peer1, term1 := bootProc(t, bin, "mpcd peer listening on ", "-peer", "-addr", "127.0.0.1:0")
	peer2, term2 := bootProc(t, bin, "mpcd peer listening on ", "-peer", "-addr", "127.0.0.1:0")
	coord, termC := bootProc(t, bin, "mpcd listening on ",
		"-addr", "127.0.0.1:0", "-drain-timeout", "30s", "-peers", peer1+","+peer2)
	golden, termG := bootProc(t, bin, "mpcd listening on ",
		"-addr", "127.0.0.1:0", "-drain-timeout", "30s")

	post := func(base, path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post("http://"+base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s%s: %v", base, path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	const dataset = `{"name":"E","arity":2,"generate":{"n":1500,"dom":40,"seed":42}}`
	for _, base := range []string{coord, golden} {
		if code, out := post(base, "/v1/datasets", dataset); code != http.StatusOK {
			t.Fatalf("register on %s: %d %s", base, code, out)
		}
	}

	type answer struct {
		Rows  [][]any `json:"rows"`
		Stats struct {
			Rounds    int
			MaxLoad   int
			TotalComm int64
			SumLoad   int64
		} `json:"stats"`
	}
	query := func(base, body string) answer {
		t.Helper()
		code, out := post(base, "/v1/query", body)
		if code != http.StatusOK {
			t.Fatalf("query on %s: %d %s", base, code, out)
		}
		var a answer
		if err := json.Unmarshal(out, &a); err != nil {
			t.Fatalf("query on %s: %v", base, err)
		}
		return a
	}

	// One query per strategy; the TCP answer must be bit-identical to the
	// in-process golden — rows and metered Stats.
	for _, strat := range []string{"auto", "yannakakis", "tree"} {
		body := fmt.Sprintf(`{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"E"},{"name":"R2","attrs":["B","C"],"dataset":"E"}],"group_by":["A"],"strategy":%q,"workers":2,"seed":9}`, strat)
		tcpAns := query(coord, body)
		goldAns := query(golden, body)
		if len(tcpAns.Rows) == 0 || tcpAns.Stats.Rounds == 0 {
			t.Fatalf("strategy %s: empty result or no metering over tcp", strat)
		}
		if fmt.Sprint(tcpAns.Rows) != fmt.Sprint(goldAns.Rows) {
			t.Fatalf("strategy %s: rows diverge across transports", strat)
		}
		if tcpAns.Stats != goldAns.Stats {
			t.Fatalf("strategy %s: stats diverge: tcp %+v, inproc %+v", strat, tcpAns.Stats, goldAns.Stats)
		}
		t.Logf("strategy %s ok over tcp (%d rows, %d rounds, load %d)",
			strat, len(tcpAns.Rows), tcpAns.Stats.Rounds, tcpAns.Stats.MaxLoad)
	}

	// A fault schedule over the wire: drops are real elided frames,
	// detected at the barrier and retried; the answer must still match
	// the fault-free golden and the report must show injections.
	{
		body := `{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"E"},{"name":"R2","attrs":["B","C"],"dataset":"E"}],"group_by":["A"],` +
			`"options":{"workers":2,"seed":9,"faults":{"drop_prob":0.2,"max_retries":10}}}`
		code, out := post(coord, "/v2/query", body)
		if code != http.StatusOK {
			t.Fatalf("faulted v2 query: %d %s", code, out)
		}
		var qr struct {
			Rows   [][]any `json:"rows"`
			Faults struct {
				Injected int `json:"injected"`
				Drops    int `json:"drops"`
				Retried  int `json:"retried"`
			} `json:"faults"`
		}
		if err := json.Unmarshal(out, &qr); err != nil {
			t.Fatalf("faulted v2 query: %v", err)
		}
		goldAns := query(golden, `{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"E"},{"name":"R2","attrs":["B","C"],"dataset":"E"}],"group_by":["A"],"workers":2,"seed":9}`)
		if fmt.Sprint(qr.Rows) != fmt.Sprint(goldAns.Rows) {
			t.Fatalf("faulted tcp rows diverge from fault-free golden")
		}
		if qr.Faults.Drops == 0 || qr.Faults.Retried == 0 {
			t.Fatalf("fault schedule dropped nothing over the wire: %+v", qr.Faults)
		}
		t.Logf("fault schedule absorbed over tcp (injected=%d drops=%d retried=%d)",
			qr.Faults.Injected, qr.Faults.Drops, qr.Faults.Retried)
	}

	// Graceful drain, coordinator first (peers must outlive it), then the
	// peers and the golden daemon.
	for _, term := range []func() error{termC, termG, term1, term2} {
		if err := term(); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
}
