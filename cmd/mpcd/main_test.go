package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServiceSmoke is the end-to-end smoke lane: build the daemon with the
// race detector, boot it on an ephemeral port, register a generated
// dataset, run one query per strategy, scrape /metrics, and shut down
// gracefully with SIGTERM while confirming the drain completes cleanly.
// `make service-smoke` runs exactly this test.
func TestServiceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e smoke in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mpcd")
	build := exec.Command("go", "build", "-race", "-o", bin, "mpcjoin/cmd/mpcd")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain-timeout", "30s",
		"-capacity", "2", "-max-queue", "8", "-tenant-queue", "1", "-log-format", "json")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// exitErr is closed-over by the waiter goroutine; exited is closed
	// (not sent on) so both the test body and Cleanup can observe it.
	var exitErr error
	exited := make(chan struct{})
	go func() { exitErr = cmd.Wait(); close(exited) }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-exited
	})

	// The daemon prints "mpcd listening on HOST:PORT" once bound.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "mpcd listening on "); ok {
			base = "http://" + strings.TrimSpace(addr)
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never reported its address: %v", sc.Err())
	}
	go func() { // drain remaining output so the child never blocks on stdout
		for sc.Scan() {
		}
	}()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	// Register a generated dataset and query it under every strategy.
	code, out := post("/v1/datasets", `{"name":"E","arity":2,"generate":{"n":1500,"dom":40,"seed":42}}`)
	if code != http.StatusOK {
		t.Fatalf("register: %d %s", code, out)
	}
	var rows []string
	for _, strat := range []string{"auto", "yannakakis", "tree"} {
		body := fmt.Sprintf(`{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"E"},{"name":"R2","attrs":["B","C"],"dataset":"E"}],"group_by":["A"],"strategy":%q,"workers":2,"seed":9}`, strat)
		code, out := post("/v1/query", body)
		if code != http.StatusOK {
			t.Fatalf("query %s: %d %s", strat, code, out)
		}
		var qr struct {
			Rows  [][]any `json:"rows"`
			Stats struct {
				Rounds  int
				SumLoad int64
			} `json:"stats"`
		}
		if err := json.Unmarshal(out, &qr); err != nil {
			t.Fatalf("query %s: %v", strat, err)
		}
		if len(qr.Rows) == 0 || qr.Stats.Rounds == 0 {
			t.Fatalf("query %s: empty result or no metering: %s", strat, out)
		}
		rows = append(rows, fmt.Sprint(qr.Rows))
		t.Logf("strategy %s ok (%d rows, %d rounds)", strat, len(qr.Rows), qr.Stats.Rounds)
	}
	if rows[0] != rows[1] || rows[1] != rows[2] {
		t.Fatalf("strategies disagree: %v", rows)
	}

	// The same query through /v2/query: knobs ride the options object,
	// here with a fault schedule the retry plane must absorb — rows must
	// match the v1 answers exactly and the response reports the faults.
	{
		body := `{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"E"},{"name":"R2","attrs":["B","C"],"dataset":"E"}],"group_by":["A"],` +
			`"options":{"workers":2,"seed":9,"faults":{"crash_prob":0.1,"drop_prob":0.1,"max_retries":10}}}`
		code, out := post("/v2/query", body)
		if code != http.StatusOK {
			t.Fatalf("v2 query: %d %s", code, out)
		}
		var qr struct {
			Rows   [][]any `json:"rows"`
			Faults struct {
				Injected int `json:"injected"`
			} `json:"faults"`
		}
		if err := json.Unmarshal(out, &qr); err != nil {
			t.Fatalf("v2 query: %v", err)
		}
		if fmt.Sprint(qr.Rows) != rows[0] {
			t.Fatalf("v2 rows diverge from v1: %v vs %v", qr.Rows, rows[0])
		}
		if qr.Faults.Injected == 0 {
			t.Fatalf("v2 fault schedule injected nothing: %s", out)
		}
		// A flat v1 knob must be rejected by the v2 decoder with the
		// typed error envelope.
		code, out = post("/v2/query", `{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"E"}],"servers":4}`)
		var env struct {
			Error struct {
				Cause string `json:"cause"`
			} `json:"error"`
		}
		if err := json.Unmarshal(out, &env); err != nil || code != http.StatusBadRequest || env.Error.Cause != "bad_request" {
			t.Fatalf("v2 flat-knob rejection: %d %s (%v)", code, out, err)
		}
		t.Logf("v2 ok (faults injected=%d, typed errors)", qr.Faults.Injected)
	}

	// Metrics reflect the completed queries (three v1 + one v2).
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Completed int64 `json:"completed"`
		InFlight  int64 `json:"in_flight"`
		SumLoad   int64 `json:"sum_load"`
		ByEngine  []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
		} `json:"by_engine"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.Completed != 4 || snap.InFlight != 0 || snap.SumLoad == 0 {
		t.Fatalf("metrics: %+v", snap)
	}
	if len(snap.ByEngine) == 0 {
		t.Fatalf("metrics: no per-engine counts: %+v", snap)
	}

	// Cache-hit round trip: the same v2 query twice — the first executes,
	// the second is served from the result cache with identical rows.
	{
		body := `{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"E"},{"name":"R2","attrs":["B","C"],"dataset":"E"}],"group_by":["A"],"options":{"workers":2,"seed":9}}`
		code, cold := post("/v2/query", body)
		if code != http.StatusOK || strings.Contains(string(cold), `"cached":true`) {
			t.Fatalf("cold v2 query: %d %s", code, cold)
		}
		code, warm := post("/v2/query", body)
		if code != http.StatusOK || !strings.Contains(string(warm), `"cached":true`) {
			t.Fatalf("warm v2 query not served from cache: %d %s", code, warm)
		}
		var coldQR, warmQR struct {
			Rows [][]any `json:"rows"`
		}
		if err := json.Unmarshal(cold, &coldQR); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(warm, &warmQR); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(coldQR.Rows) != fmt.Sprint(warmQR.Rows) {
			t.Fatalf("cached rows diverge: %v vs %v", warmQR.Rows, coldQR.Rows)
		}
		t.Logf("cache round trip ok (%d rows)", len(warmQR.Rows))
	}

	// Tenant quota: with -capacity 2 and -tenant-queue 1, a burst of
	// whole-capacity queries from one tenant overflows its queue share and
	// gets shed with 429, while a query from another tenant still queues
	// behind the burst and completes.
	{
		code, out := post("/v1/datasets", `{"name":"Mid","arity":2,"generate":{"n":8000,"dom":120,"seed":7}}`)
		if code != http.StatusOK {
			t.Fatalf("register Mid: %d %s", code, out)
		}
		postTenant := func(tenant, body string) (int, []byte) {
			req, err := http.NewRequest(http.MethodPost, base+"/v2/query", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-MPC-Tenant", tenant)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("tenant POST: %v", err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return resp.StatusCode, buf.Bytes()
		}
		const flood = 6
		floodBody := func(i int) string {
			return fmt.Sprintf(`{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"Mid"},{"name":"R2","attrs":["B","C"],"dataset":"Mid"}],"group_by":["A"],"options":{"workers":2,"seed":%d,"cache":"off"}}`, 100+i)
		}
		codes := make(chan int, flood)
		for i := 0; i < flood; i++ {
			go func(i int) {
				code, _ := postTenant("noisy", floodBody(i))
				codes <- code
			}(i)
		}
		quietCode, quietOut := postTenant("quiet", floodBody(999))
		if quietCode != http.StatusOK {
			t.Fatalf("quiet tenant query during flood: %d %s", quietCode, quietOut)
		}
		shed, served := 0, 0
		for i := 0; i < flood; i++ {
			switch c := <-codes; c {
			case http.StatusOK:
				served++
			case http.StatusTooManyRequests:
				shed++
			default:
				t.Fatalf("flood query status %d", c)
			}
		}
		if shed == 0 || served == 0 {
			t.Fatalf("tenant flood: served=%d shed=%d, want both > 0", served, shed)
		}
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var tsnap struct {
			TenantShed []struct {
				Name  string `json:"name"`
				Count int64  `json:"count"`
			} `json:"tenant_shed"`
		}
		if err := json.NewDecoder(mresp.Body).Decode(&tsnap); err != nil {
			t.Fatal(err)
		}
		mresp.Body.Close()
		noisyShed := int64(0)
		for _, c := range tsnap.TenantShed {
			if c.Name == "noisy" {
				noisyShed = c.Count
			}
		}
		if noisyShed != int64(shed) {
			t.Fatalf("tenant_shed[noisy] = %d, want %d", noisyShed, shed)
		}
		t.Logf("tenant quota ok (served=%d shed=%d, quiet tenant unaffected)", served, shed)
	}

	// Graceful shutdown: SIGTERM drains and the process exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
		if exitErr != nil {
			t.Fatalf("daemon exited with %v, want clean drain", exitErr)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// The JSON access log (read only after exit: the buffer is not
	// synchronized with the child) carries one structured line per query
	// with tenant, cache and outcome fields.
	logs := stderr.String()
	for _, want := range []string{`"cache_hit":true`, `"tenant":"noisy"`, `"tenant":"quiet"`, `"cause":"queue_full"`, `"path":"/v1/query"`} {
		if !strings.Contains(logs, want) {
			t.Fatalf("access log missing %s:\n%s", want, logs)
		}
	}
}

// TestDrainCancelsInFlight is the smoke-lane regression for the drain
// cause: a query still running when the drain window closes is cancelled
// by the daemon and must be recorded under cancel cause "drain" (not
// "client"), which the daemon reports in its final log line.
func TestDrainCancelsInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e smoke in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mpcd")
	build := exec.Command("go", "build", "-race", "-o", bin, "mpcjoin/cmd/mpcd")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain-timeout", "500ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var exitErr error
	exited := make(chan struct{})
	go func() { exitErr = cmd.Wait(); close(exited) }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-exited
	})

	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "mpcd listening on "); ok {
			base = "http://" + strings.TrimSpace(addr)
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never reported its address: %v", sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()

	resp, err := http.Post(base+"/v1/datasets", "application/json",
		strings.NewReader(`{"name":"Big","arity":2,"generate":{"n":400000,"dom":500,"seed":1}}`))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %v %v", resp, err)
	}
	resp.Body.Close()

	// A query that will far outlive the 500ms drain window.
	go func() {
		body := `{"relations":[{"name":"R1","attrs":["A","B"],"dataset":"Big"},{"name":"R2","attrs":["B","C"],"dataset":"Big"}],"group_by":["A","C"]}`
		resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			InFlight int64 `json:"in_flight"`
		}
		if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		mresp.Body.Close()
		if snap.InFlight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never started executing")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
		if exitErr != nil {
			t.Fatalf("daemon exited with %v, want clean forced drain\nstderr:\n%s", exitErr, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	logs := stderr.String()
	if !strings.Contains(logs, "drain=1") {
		t.Fatalf("final log does not record the drain cancellation:\n%s", logs)
	}
	if strings.Contains(logs, "client=") {
		t.Fatalf("drain cancellation mislabeled as client disconnect:\n%s", logs)
	}
}
