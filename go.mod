module mpcjoin

go 1.23
