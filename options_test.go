package mpcjoin

import (
	"errors"
	"strings"
	"testing"

	"mpcjoin/internal/transport"
)

// matmulFixture returns a tiny matmul-class query and instance, enough to
// exercise every option path end to end.
func matmulFixture() (*Query, Instance[int64]) {
	q := NewQuery().
		Relation("R1", "A", "B").
		Relation("R2", "B", "C").
		GroupBy("A", "C")
	data := Instance[int64]{
		"R1": NewRelation[int64]("A", "B"),
		"R2": NewRelation[int64]("B", "C"),
	}
	for i := int64(0); i < 40; i++ {
		data["R1"].Add(1, Value(i%8), Value(i%5))
		data["R2"].Add(1, Value(i%5), Value(i%7))
	}
	return q, data
}

// TestOptionsMatrix sweeps valid and conflicting option combinations:
// valid sets must execute, conflicting sets must fail at Execute with
// ErrOptionConflict (or a validation error) before any work runs.
func TestOptionsMatrix(t *testing.T) {
	cases := []struct {
		name     string
		opts     []Option
		conflict bool // want ErrOptionConflict
		invalid  bool // want some non-conflict option error
	}{
		{name: "none"},
		{name: "servers", opts: []Option{WithServers(8)}},
		{name: "baseline", opts: []Option{WithBaseline()}},
		{name: "tree", opts: []Option{WithTreeEngine()}},
		{name: "baseline-twice", opts: []Option{WithBaseline(), WithBaseline()}},
		{name: "seed+estimator", opts: []Option{WithSeed(7), WithEstimator(64, 3)}},
		{name: "estimator+seed", opts: []Option{WithEstimator(64, 3), WithSeed(7)}},
		{name: "oracle", opts: []Option{WithOutOracle(40)}},
		{name: "oracle+tree", opts: []Option{WithOutOracle(40), WithTreeEngine()}},
		{name: "workers", opts: []Option{WithWorkers(4)}},
		{name: "workers-auto", opts: []Option{WithWorkers(0)}},
		{name: "trace", opts: []Option{WithTrace()}},
		{name: "faults", opts: []Option{WithFaults(FaultSpec{Seed: 5, DropProb: 0.3, MaxRetries: 8})}},
		{name: "transport-inproc", opts: []Option{WithTransport(InProcTransport())}},
		{name: "transport-zero", opts: []Option{WithTransport(ExchangeTransport{})}},
		{name: "faults+retry", opts: []Option{WithFaults(FaultSpec{Seed: 5, DropProb: 0.3}), WithRetry(8)}},
		{name: "retry+faults", opts: []Option{WithRetry(8), WithFaults(FaultSpec{Seed: 5, DropProb: 0.3})}},
		{name: "everything", opts: []Option{
			WithServers(8), WithSeed(3), WithEstimator(32, 2), WithWorkers(2),
			WithTrace(), WithFaults(FaultSpec{DropProb: 0.2}), WithRetry(10),
		}},

		{name: "baseline+tree", opts: []Option{WithBaseline(), WithTreeEngine()}, conflict: true},
		{name: "tree+baseline", opts: []Option{WithTreeEngine(), WithBaseline()}, conflict: true},
		{name: "baseline+oracle", opts: []Option{WithBaseline(), WithOutOracle(40)}, conflict: true},
		{name: "oracle+baseline", opts: []Option{WithOutOracle(40), WithBaseline()}, conflict: true},
		{name: "retry-alone", opts: []Option{WithRetry(3)}, conflict: true},
		{name: "servers-zero", opts: []Option{WithServers(0)}, invalid: true},
		{name: "servers-negative", opts: []Option{WithServers(-4)}, invalid: true},
		{name: "faults-bad-spec", opts: []Option{WithFaults(FaultSpec{CrashProb: 1.5})}, invalid: true},
	}

	q, data := matmulFixture()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Execute[int64](Ints(), q, data, tc.opts...)
			switch {
			case tc.conflict:
				if !errors.Is(err, ErrOptionConflict) {
					t.Fatalf("want ErrOptionConflict, got %v", err)
				}
			case tc.invalid:
				if err == nil {
					t.Fatal("want option validation error, got nil")
				}
				if errors.Is(err, ErrOptionConflict) {
					t.Fatalf("want plain validation error, got conflict: %v", err)
				}
			default:
				if err != nil {
					t.Fatalf("valid combination failed: %v", err)
				}
				if len(res.Rows) == 0 {
					t.Fatal("no rows")
				}
			}
		})
	}
}

// TestOptionsOrderIndependent: WithEstimator's derived seed must not
// depend on whether WithSeed comes before or after it (the old apply-time
// derivation was order-dependent).
func TestOptionsOrderIndependent(t *testing.T) {
	q, data := matmulFixture()
	a, err := Execute[int64](Ints(), q, data, WithSeed(42), WithEstimator(64, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute[int64](Ints(), q, data, WithEstimator(64, 3), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("option order changed stats: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Errorf("option order changed row count: %d vs %d", len(a.Rows), len(b.Rows))
	}
}

// TestOptionsFaultResult: a fault-injected run reports Result.Faults and
// keeps Rows/Stats identical to the fault-free run; an unabsorbable
// schedule surfaces ErrFaultBudgetExceeded.
func TestOptionsFaultResult(t *testing.T) {
	q, data := matmulFixture()
	free, err := Execute[int64](Ints(), q, data, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if free.Faults != nil {
		t.Fatal("fault-free run must not carry a FaultReport")
	}

	faulted, err := Execute[int64](Ints(), q, data, WithSeed(3),
		WithFaults(FaultSpec{Seed: 2, CrashProb: 0.2, DropProb: 0.2}), WithRetry(10))
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Faults == nil {
		t.Fatal("faulted run must carry a FaultReport")
	}
	if faulted.Stats != free.Stats {
		t.Errorf("faulted stats %+v != fault-free %+v", faulted.Stats, free.Stats)
	}
	if len(faulted.Rows) != len(free.Rows) {
		t.Fatalf("row count differs: %d vs %d", len(faulted.Rows), len(free.Rows))
	}
	for i := range free.Rows {
		if faulted.Rows[i].Annot != free.Rows[i].Annot {
			t.Fatalf("row %d annot differs", i)
		}
	}

	_, err = Execute[int64](Ints(), q, data, WithSeed(3),
		WithFaults(FaultSpec{Seed: 2, CrashProb: 1}), WithRetry(1))
	if !errors.Is(err, ErrFaultBudgetExceeded) {
		t.Fatalf("want ErrFaultBudgetExceeded, got %v", err)
	}
	var fbe *FaultBudgetError
	if !errors.As(err, &fbe) {
		t.Fatalf("want *FaultBudgetError, got %T", err)
	}
}

// TestOptionsTransportTCP exercises WithTransport through the public API:
// the same query over two loopback shuffle peers must give the same rows
// and Stats as the in-process default, and an unreachable peer tier must
// fail Execute with a connection error rather than wrong answers.
func TestOptionsTransportTCP(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		p, err := transport.ListenPeer("127.0.0.1:0")
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		t.Cleanup(func() { p.Close() })
		addrs = append(addrs, p.Addr())
	}

	q, data := matmulFixture()
	inp, err := Execute[int64](Ints(), q, data, WithSeed(4), WithServers(8))
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := Execute[int64](Ints(), q, data, WithSeed(4), WithServers(8),
		WithTransport(TCPTransport(addrs...)))
	if err != nil {
		t.Fatalf("tcp execute: %v", err)
	}
	if tcp.Stats != inp.Stats {
		t.Errorf("Stats diverge: inproc %+v, tcp %+v", inp.Stats, tcp.Stats)
	}
	if len(tcp.Rows) != len(inp.Rows) {
		t.Fatalf("row count differs: %d vs %d", len(tcp.Rows), len(inp.Rows))
	}
	for i := range inp.Rows {
		if tcp.Rows[i].Annot != inp.Rows[i].Annot {
			t.Fatalf("row %d annot differs", i)
		}
	}

	// Nothing listens on a reserved port: Execute must surface the dial
	// failure, not fall back silently to the in-process path.
	_, err = Execute[int64](Ints(), q, data, WithTransport(TCPTransport("127.0.0.1:1")))
	if err == nil || !strings.Contains(err.Error(), "transport") {
		t.Fatalf("want a transport connect error, got %v", err)
	}
}
