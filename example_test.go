package mpcjoin_test

import (
	"fmt"

	"mpcjoin"
)

// The sparse matrix multiplication ∑_B R1(A,B) ⋈ R2(B,C), the paper's
// running example, under the counting semiring.
func Example() {
	q := mpcjoin.NewQuery().
		Relation("R1", "A", "B").
		Relation("R2", "B", "C").
		GroupBy("A", "C")

	data := mpcjoin.Instance[int64]{
		"R1": mpcjoin.NewRelation[int64]("A", "B"),
		"R2": mpcjoin.NewRelation[int64]("B", "C"),
	}
	data["R1"].Add(2, 0, 7).Add(5, 0, 8)
	data["R2"].Add(3, 7, 1).Add(7, 8, 1)

	res, err := mpcjoin.Execute[int64](mpcjoin.Ints(), q, data,
		mpcjoin.WithServers(4), mpcjoin.WithSeed(1))
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("(%d,%d) = %d\n", row.Vals[0], row.Vals[1], row.Annot)
	}
	fmt.Println("engine:", res.Engine)
	// Output:
	// (0,1) = 41
	// engine: matmul-linear
}

// Shortest two-hop distances via the tropical MinPlus semiring: the same
// query, different algebra.
func Example_tropical() {
	q := mpcjoin.NewQuery().
		Relation("Hop1", "Src", "Mid").
		Relation("Hop2", "Mid", "Dst").
		GroupBy("Src", "Dst")

	data := mpcjoin.Instance[int64]{
		"Hop1": mpcjoin.NewRelation[int64]("Src", "Mid"),
		"Hop2": mpcjoin.NewRelation[int64]("Mid", "Dst"),
	}
	data["Hop1"].Add(3, 0, 1).Add(8, 0, 2) // src 0 → mids 1 (cost 3), 2 (cost 8)
	data["Hop2"].Add(4, 1, 9).Add(1, 2, 9) // mids → dst 9 (costs 4, 1)

	res, err := mpcjoin.Execute[int64](mpcjoin.MinPlus(), q, data,
		mpcjoin.WithServers(4))
	if err != nil {
		panic(err)
	}
	d, _ := res.Lookup(0, 9)
	fmt.Println("min cost 0→9:", d) // min(3+4, 8+1)
	// Output:
	// min cost 0→9: 7
}

// Forcing the distributed Yannakakis baseline to compare MPC loads.
func ExampleWithBaseline() {
	q := mpcjoin.NewQuery().
		Relation("R1", "A", "B").
		Relation("R2", "B", "C").
		GroupBy("A", "C")

	data := mpcjoin.Instance[int64]{
		"R1": mpcjoin.NewRelation[int64]("A", "B"),
		"R2": mpcjoin.NewRelation[int64]("B", "C"),
	}
	// A dense block: 40 rows × 40 columns through 20 shared b's.
	for i := int64(0); i < 40; i++ {
		for b := int64(0); b < 20; b++ {
			data["R1"].Add(1, mpcjoin.Value(i), mpcjoin.Value(b))
			data["R2"].Add(1, mpcjoin.Value(b), mpcjoin.Value(i))
		}
	}

	alg, _ := mpcjoin.Execute[int64](mpcjoin.Ints(), q, data, mpcjoin.WithServers(8), mpcjoin.WithSeed(2))
	base, _ := mpcjoin.Execute[int64](mpcjoin.Ints(), q, data, mpcjoin.WithServers(8), mpcjoin.WithBaseline())
	fmt.Println("same answers:", len(alg.Rows) == len(base.Rows))
	fmt.Println("paper's algorithm beats baseline:", alg.Stats.MaxLoad < base.Stats.MaxLoad)
	// Output:
	// same answers: true
	// paper's algorithm beats baseline: true
}

// Classifying a query without running it.
func ExampleQuery_Class() {
	line := mpcjoin.NewQuery().
		Relation("R1", "A1", "A2").
		Relation("R2", "A2", "A3").
		Relation("R3", "A3", "A4").
		GroupBy("A1", "A4")
	cls, _ := line.Class()
	fmt.Println(cls)
	// Output:
	// line
}
