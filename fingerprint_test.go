package mpcjoin

import (
	"math/rand"
	"testing"
)

// TestFingerprintOrderIndependent asserts the canonical hash ignores the
// order options are supplied in.
func TestFingerprintOrderIndependent(t *testing.T) {
	opts := []Option{
		WithServers(8),
		WithTreeEngine(),
		WithSeed(42),
		WithEstimator(64, 7),
		WithFaults(FaultSpec{DropProb: 0.1, Seed: 9}),
		WithRetry(5),
	}
	want, err := Fingerprint(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(opts))
		shuffled := make([]Option, len(opts))
		for i, j := range perm {
			shuffled[i] = opts[j]
		}
		got, err := Fingerprint(shuffled...)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("permutation %v: fingerprint %x != %x", perm, got, want)
		}
	}
}

// TestFingerprintResultKnobsDistinct asserts that changing any
// result-affecting knob changes the hash.
func TestFingerprintResultKnobsDistinct(t *testing.T) {
	base, err := Fingerprint(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string][]Option{
		"servers":   {WithSeed(1), WithServers(8)},
		"baseline":  {WithSeed(1), WithBaseline()},
		"tree":      {WithSeed(1), WithTreeEngine()},
		"seed":      {WithSeed(2)},
		"estimator": {WithSeed(1), WithEstimator(64, 7)},
		"oracle":    {WithSeed(1), WithOutOracle(100)},
		"faults":    {WithSeed(1), WithFaults(FaultSpec{DropProb: 0.1})},
	}
	seen := map[uint64]string{base: "base"}
	for name, opts := range variants {
		got, err := Fingerprint(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[got]; dup {
			t.Fatalf("%s collides with %s: %x", name, prev, got)
		}
		seen[got] = name
	}
	// Distinct fault schedules hash apart too.
	a, _ := Fingerprint(WithFaults(FaultSpec{DropProb: 0.1}))
	b, _ := Fingerprint(WithFaults(FaultSpec{DropProb: 0.2}))
	if a == b {
		t.Fatal("distinct fault specs collide")
	}
	// Retry budget is result-affecting (it decides whether a faulty run
	// completes or fails).
	c, _ := Fingerprint(WithFaults(FaultSpec{DropProb: 0.1}), WithRetry(1))
	if a == c {
		t.Fatal("retry budget did not change the fingerprint")
	}
}

// TestFingerprintExecutionKnobsIgnored asserts wall-clock-only knobs do
// not contribute.
func TestFingerprintExecutionKnobsIgnored(t *testing.T) {
	base, err := Fingerprint(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string][]Option{
		"workers":   {WithSeed(1), WithWorkers(8)},
		"trace":     {WithSeed(1), WithTrace()},
		"transport": {WithSeed(1), WithTransport(InProcTransport())},
	} {
		got, err := Fingerprint(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("%s changed the fingerprint: %x != %x", name, got, base)
		}
	}
}

// TestFingerprintDefaultsResolved asserts an absent option and its
// explicit default collide (the defaults are applied before hashing).
func TestFingerprintDefaultsResolved(t *testing.T) {
	implicit, err := Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Fingerprint(WithServers(16))
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Fatalf("default Servers not resolved: %x != %x", implicit, explicit)
	}
}

// TestFingerprintConflictErrors asserts invalid combinations surface the
// same errors Execute reports.
func TestFingerprintConflictErrors(t *testing.T) {
	if _, err := Fingerprint(WithBaseline(), WithTreeEngine()); err == nil {
		t.Fatal("conflicting engines accepted")
	}
	if _, err := Fingerprint(WithRetry(2)); err == nil {
		t.Fatal("WithRetry without WithFaults accepted")
	}
}
