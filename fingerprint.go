package mpcjoin

// Fingerprint resolves opts exactly as Execute would and returns a 64-bit
// canonical hash of every knob that can change what a query returns —
// engine selection, cluster size, seeds, estimator parameters, the output
// oracle and the fault schedule. Knobs that only change how the work runs
// (WithWorkers, WithTrace, WithTransport) do not contribute, because they
// are bit-identical by construction.
//
// The hash is order-independent — options are declarative and resolved on
// a builder, so any permutation of the same options fingerprints alike —
// and it applies the same defaults Execute applies, so an absent option
// and its explicit default collide. Conflicting or invalid options return
// the same error Execute would.
//
// The serving tier keys its result cache on this value: together with the
// dataset versions, the query, the semiring and the engine it uniquely
// determines the rows, Stats and trace of an execution.
func Fingerprint(opts ...Option) (uint64, error) {
	co, err := buildOptions(opts)
	if err != nil {
		return 0, err
	}
	return co.ResultFingerprint(), nil
}
