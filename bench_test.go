package mpcjoin

// bench_test.go hosts one testing.B benchmark per experiment of the
// reproduction (Table 1 rows, crossover, unequal sizes, p-scaling,
// Theorem 2/3 lower-bound audits, Figure 1/2 reproductions, the §2.2
// estimator, and the two ablations), plus public-API micro-benchmarks.
// Each experiment benchmark runs the same harness as `mpcbench
// -experiment <id>` in quick mode and reports the measured MPC loads as
// custom metrics (load_new, load_yann) alongside wall-clock time.
// EXPERIMENTS.md records the full-size numbers.

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mpcjoin/internal/experiments"
)

// benchExperiment runs one experiment per iteration and reports the loads
// of its last row as benchmark metrics.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiments.Run(id, experiments.Config{Quick: true, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Surface the last row's load columns (when present) as metrics.
	if len(tab.Rows) > 0 {
		row := tab.Rows[len(tab.Rows)-1]
		for i, h := range tab.Header {
			switch h {
			case "L_new", "L_measured", "L_os":
				if v, err := strconv.ParseFloat(row[i], 64); err == nil {
					b.ReportMetric(v, "load_new")
				}
			case "L_yann", "bound", "L_hash":
				if v, err := strconv.ParseFloat(row[i], 64); err == nil {
					b.ReportMetric(v, "load_base")
				}
			}
		}
	}
}

// Table 1, row 1: sparse matrix multiplication.
func BenchmarkT1MatMul(b *testing.B) { benchExperiment(b, "T1-MM-load") }

// Theorem 1's min{·,·}: worst-case vs output-sensitive crossover.
func BenchmarkT1MatMulCrossover(b *testing.B) { benchExperiment(b, "T1-MM-crossover") }

// Theorem 1 with N1 ≠ N2 (including the N1/N2 ∉ [1/p,p] fast path).
func BenchmarkT1MatMulUnequal(b *testing.B) { benchExperiment(b, "T1-MM-unequal") }

// Table 1, row 3: line queries.
func BenchmarkT1Line(b *testing.B) { benchExperiment(b, "T1-Line-load") }

// Table 1, row 2: star queries.
func BenchmarkT1Star(b *testing.B) { benchExperiment(b, "T1-Star-load") }

// Table 1, row 4: general tree queries (Figure 3 twig).
func BenchmarkT1Tree(b *testing.B) { benchExperiment(b, "T1-Tree-load") }

// Load exponents in p for both §3 branches and the baseline.
func BenchmarkScalingP(b *testing.B) { benchExperiment(b, "T1-scaling-p") }

// Theorem 2 lower-bound audit.
func BenchmarkLowerBoundThm2(b *testing.B) { benchExperiment(b, "LB-Thm2") }

// Theorem 3 lower-bound audit (optimality evidence for Theorem 1).
func BenchmarkLowerBoundThm3(b *testing.B) { benchExperiment(b, "LB-Thm3") }

// Figure 1: the five-arm star-like query through the §6 engine.
func BenchmarkFig1StarLike(b *testing.B) { benchExperiment(b, "FIG1-starlike") }

// Figure 2: reduction, six-twig decomposition, execution.
func BenchmarkFig2Tree(b *testing.B) { benchExperiment(b, "FIG2-twigs") }

// §2.2 output-size estimator accuracy and load.
func BenchmarkEstimateOut(b *testing.B) { benchExperiment(b, "EST-OUT") }

// Ablation: locality of aggregation (the §1.5 mechanism).
func BenchmarkAblationLocality(b *testing.B) { benchExperiment(b, "ABL-locality") }

// Ablation: skew-proof primitives vs naive hash partitioning.
func BenchmarkAblationPacking(b *testing.B) { benchExperiment(b, "ABL-packing") }

// ---------------------------------------------------------------------------
// Public-API micro-benchmarks
// ---------------------------------------------------------------------------

func buildMatMulData(n int, rng *rand.Rand) (*Query, Instance[int64]) {
	q := NewQuery().
		Relation("R1", "A", "B").
		Relation("R2", "B", "C").
		GroupBy("A", "C")
	data := Instance[int64]{
		"R1": NewRelation[int64]("A", "B"),
		"R2": NewRelation[int64]("B", "C"),
	}
	for i := 0; i < n; i++ {
		data["R1"].Add(1, Value(rng.Intn(n)), Value(rng.Intn(n/8)))
		data["R2"].Add(1, Value(rng.Intn(n/8)), Value(rng.Intn(n)))
	}
	return q, data
}

func BenchmarkExecuteMatMulAuto(b *testing.B) {
	q, data := buildMatMulData(4096, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Execute[int64](Ints(), q, data, WithServers(16), WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.MaxLoad == 0 {
			b.Fatal("no load")
		}
	}
}

func BenchmarkExecuteMatMulBaseline(b *testing.B) {
	q, data := buildMatMulData(4096, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute[int64](Ints(), q, data, WithServers(16), WithBaseline()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteLine3(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	q := NewQuery().
		Relation("R1", "A1", "A2").
		Relation("R2", "A2", "A3").
		Relation("R3", "A3", "A4").
		GroupBy("A1", "A4")
	data := Instance[int64]{
		"R1": NewRelation[int64]("A1", "A2"),
		"R2": NewRelation[int64]("A2", "A3"),
		"R3": NewRelation[int64]("A3", "A4"),
	}
	for i := 0; i < 2048; i++ {
		data["R1"].Add(1, Value(rng.Intn(2048)), Value(rng.Intn(256)))
		data["R2"].Add(1, Value(rng.Intn(256)), Value(rng.Intn(256)))
		data["R3"].Add(1, Value(rng.Intn(256)), Value(rng.Intn(2048)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute[int64](Ints(), q, data, WithServers(16)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMulKernel is the kernel-level wall-clock/allocation target
// of the allocation-lean exchange/sort work: one p=16 matrix
// multiplication over N = 16384 total tuples (8192 per relation), the
// same shape as the BENCH_runtime.json matmul row. Run with -benchmem;
// BENCH_kernels.json records before/after rows for it.
func BenchmarkMatMulKernel(b *testing.B) {
	q, data := buildMatMulData(8192, rand.New(rand.NewSource(5)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Execute[int64](Ints(), q, data, WithServers(16))
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.MaxLoad == 0 {
			b.Fatal("no load")
		}
	}
}

// §1.4's alternative route: HyperCube full join + aggregation.
func BenchmarkAltFullJoin(b *testing.B) { benchExperiment(b, "ALT-fulljoin") }

// The O(1)-rounds claim: round counts must not grow with the data size.
func BenchmarkRoundsConstant(b *testing.B) { benchExperiment(b, "T1-rounds") }

// BenchmarkRuntimeScaling runs one fixed matmul instance under worker
// counts 1, 2, 4 and 8. The runtime contract says the metered MaxLoad is
// identical for every count (checked hard, every iteration); wall-clock
// time should improve monotonically while the worker count stays within
// the host's core count (checked with slack — beyond NumCPU extra workers
// only add scheduling overhead, so those points are reported but not
// asserted).
func BenchmarkRuntimeScaling(b *testing.B) {
	q, data := buildMatMulData(4096, rand.New(rand.NewSource(3)))
	workerCounts := []int{1, 2, 4, 8}
	baseLoad := -1
	avg := make(map[int]time.Duration, len(workerCounts))
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				res, err := Execute[int64](Ints(), q, data, WithServers(16), WithWorkers(w))
				total += time.Since(t0)
				if err != nil {
					b.Fatal(err)
				}
				if baseLoad < 0 {
					baseLoad = res.Stats.MaxLoad
				}
				if res.Stats.MaxLoad != baseLoad {
					b.Fatalf("workers=%d changed MaxLoad: got %d, serial %d", w, res.Stats.MaxLoad, baseLoad)
				}
			}
			avg[w] = total / time.Duration(b.N)
		})
	}
	cpus := runtime.NumCPU()
	for i := 1; i < len(workerCounts); i++ {
		prev, cur := workerCounts[i-1], workerCounts[i]
		b.Logf("workers=%d: %v per run (MaxLoad %d)", cur, avg[cur], baseLoad)
		if cur > cpus {
			continue // oversubscribed: no speedup to assert on this host
		}
		// Allow 25% noise; the requirement is "no slower", not a strict
		// speedup factor, since small instances are sync-dominated.
		if avg[cur] > avg[prev]+avg[prev]/4 {
			b.Errorf("workers=%d slower than workers=%d: %v vs %v (NumCPU=%d)",
				cur, prev, avg[cur], avg[prev], cpus)
		}
	}
}
