package mpcjoin

// graph.go is the public surface of the iterated graph-analytics family:
// one SpMV/SpMSpV primitive generic over the semiring, and the three
// drivers built on it — BFS (Bools), SSSP (MinPlus), PageRank (Floats).
// Each driver runs internal/spmv's multi-round loop on the same execution
// machinery as Execute (servers, seed, workers, tracing, fault injection,
// transport all via the usual With* options), so a traced run exposes
// every iteration's exchange rounds and a fault-injected run retries them
// like any join-aggregate round.

import (
	"context"
	"fmt"

	"mpcjoin/internal/core"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/spmv"
)

// GraphEdge is one weighted directed edge S → D of a graph workload.
// BFS ignores the weight, SSSP adds it along paths (it must be
// nonnegative and finite for shortest-path semantics), PageRank spreads
// rank uniformly regardless of it.
type GraphEdge struct {
	Src, Dst Value
	W        int64
}

// VecEntry is one element of a sparse vector: an index and its
// annotation in the semiring's carrier.
type VecEntry[W any] struct {
	Idx Value
	Val W
}

// MatrixEntry is one matrix element for SpMV: y[Row] = ⊕_Col A[Row,Col]
// ⊗ x[Col].
type MatrixEntry[W any] struct {
	Row, Col Value
	W        W
}

// IterationStat meters one iteration of a graph driver: state sizes in
// and out, elementary products formed, whether the frontier-sparse local
// path ran, and the iteration's rounds and loads.
type IterationStat = spmv.IterStat

// SpMVResult is one distributed multiply's outcome.
type SpMVResult[W any] struct {
	// Entries is y = A ⊗ x, sorted by index; indices whose result is
	// absent (no contributing product) do not appear.
	Entries []VecEntry[W]
	// Stats is the metered cost: matrix and vector placement plus the
	// multiply's exchange.
	Stats  Stats
	Trace  []RoundTrace
	Faults *FaultReport
}

// SpMV computes the distributed product y = A ⊗ x over the semiring —
// one placement of the matrix and vector, one pre-aggregated exchange.
// For iterated workloads prefer the drivers (BFS, SSSP, PageRank), which
// place the matrix once and pay one exchange per iteration.
func SpMV[W any](sr Semiring[W], a []MatrixEntry[W], x []VecEntry[W], opts ...Option) (*SpMVResult[W], error) {
	return SpMVContext(context.Background(), sr, a, x, opts...)
}

// SpMVContext is SpMV with cooperative cancellation.
func SpMVContext[W any](ctx context.Context, sr Semiring[W], a []MatrixEntry[W], x []VecEntry[W], opts ...Option) (res *SpMVResult[W], err error) {
	co, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	p := serversOf(co)
	edges := make([]spmv.Edge[W], len(a))
	for i, e := range a {
		edges[i] = spmv.Edge[W]{Src: e.Col, Dst: e.Row, W: e.W}
	}
	in := make([]spmv.Entry[W], len(x))
	for i, e := range x {
		in[i] = spmv.Entry[W]{Idx: e.Idx, Val: e.Val}
	}

	ex, release, err := co.NewScope(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer mpc.Recover(&err)

	eng := spmv.NewEngine[W](ex, sr, edges, p, co.Seed)
	xv, vst := eng.NewVector(in)
	y, ms := eng.Mul(xv)

	res = &SpMVResult[W]{Stats: mpc.Seq(eng.BuildStats(), mpc.Seq(vst, ms.Stats))}
	for _, en := range y.Entries() {
		res.Entries = append(res.Entries, VecEntry[W]{Idx: en.Idx, Val: en.Val})
	}
	finishRun(co, &res.Trace, &res.Faults)
	return res, nil
}

// VertexRow is one vertex's result in a traversal: BFS hop level or SSSP
// distance.
type VertexRow struct {
	Vertex Value
	Val    int64
}

// GraphResult is a traversal driver's outcome.
type GraphResult struct {
	// Rows holds one entry per reached vertex, sorted by vertex;
	// unreachable vertices are absent.
	Rows []VertexRow
	// Iterations meters each driver iteration (see IterationStat).
	Iterations []IterationStat
	// Stats is the driver's total cost: graph placement, vector setup,
	// and every iteration's exchange and convergence rounds.
	Stats Stats
	// Converged reports whether the loop reached its fixpoint within the
	// round budget (false means the budget cut it off; Rows holds the
	// state reached).
	Converged bool
	// Vertices and Edges are the placed graph's sizes.
	Vertices, Edges int64
	Trace           []RoundTrace
	Faults          *FaultReport
}

// BFS computes hop distances from src: level 0 at the source, level k
// for vertices first reached by the k-th frontier expansion — the Bools
// instantiation of the iterated SpMSpV loop.
func BFS(edges []GraphEdge, src Value, opts ...Option) (*GraphResult, error) {
	return BFSContext(context.Background(), edges, src, opts...)
}

// BFSContext is BFS with cooperative cancellation.
func BFSContext(ctx context.Context, edges []GraphEdge, src Value, opts ...Option) (*GraphResult, error) {
	co, ip, err := buildIterOptions(opts, false)
	if err != nil {
		return nil, err
	}
	return runTraversal(ctx, co, func(ex *mpc.Exec, p int) *spmv.GraphResult {
		bedges := make([]spmv.Edge[bool], len(edges))
		for i, e := range edges {
			bedges[i] = spmv.Edge[bool]{Src: e.Src, Dst: e.Dst, W: true}
		}
		return spmv.BFS(ex, bedges, p, co.Seed, src, ip.maxIters)
	})
}

// SSSP computes single-source shortest-path distances from src under the
// MinPlus (tropical) semiring by distributed frontier relaxation. Edge
// weights must be nonnegative. The default round budget is the
// Bellman-Ford guarantee (|V|+1 iterations); WithMaxIters overrides it.
func SSSP(edges []GraphEdge, src Value, opts ...Option) (*GraphResult, error) {
	return SSSPContext(context.Background(), edges, src, opts...)
}

// SSSPContext is SSSP with cooperative cancellation.
func SSSPContext(ctx context.Context, edges []GraphEdge, src Value, opts ...Option) (*GraphResult, error) {
	co, ip, err := buildIterOptions(opts, false)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if e.W < 0 {
			return nil, fmt.Errorf("mpcjoin: SSSP: negative edge weight %d on %d→%d", e.W, e.Src, e.Dst)
		}
	}
	return runTraversal(ctx, co, func(ex *mpc.Exec, p int) *spmv.GraphResult {
		wedges := make([]spmv.Edge[int64], len(edges))
		for i, e := range edges {
			wedges[i] = spmv.Edge[int64]{Src: e.Src, Dst: e.Dst, W: e.W}
		}
		return spmv.SSSP(ex, wedges, p, co.Seed, src, ip.maxIters)
	})
}

func runTraversal(ctx context.Context, co core.Options, run func(ex *mpc.Exec, p int) *spmv.GraphResult) (res *GraphResult, err error) {
	p := serversOf(co)
	ex, release, err := co.NewScope(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer mpc.Recover(&err)

	gr := run(ex, p)
	res = &GraphResult{
		Iterations: gr.Iters,
		Stats:      mpc.Seq(gr.Build, gr.Stats),
		Converged:  gr.Converged,
		Vertices:   gr.N,
		Edges:      gr.NNZ,
	}
	res.Rows = make([]VertexRow, len(gr.Rows))
	for i, en := range gr.Rows {
		res.Rows[i] = VertexRow{Vertex: en.Idx, Val: en.Val}
	}
	finishRun(co, &res.Trace, &res.Faults)
	return res, nil
}

// RankRow is one vertex's PageRank.
type RankRow struct {
	Vertex Value
	Rank   float64
}

// PageRankResult is the PageRank driver's outcome.
type PageRankResult struct {
	// Ranks holds every vertex's rank, sorted by vertex; ranks sum to 1
	// up to float error.
	Ranks      []RankRow
	Iterations []IterationStat
	Stats      Stats
	// Converged reports whether the L∞ residual reached the tolerance
	// within the round budget.
	Converged       bool
	Vertices, Edges int64
	Trace           []RoundTrace
	Faults          *FaultReport
}

// PageRank computes damped PageRank over the edge list (weights ignored;
// rank spreads uniformly over out-neighbors, dangling mass redistributes
// uniformly). Tune with WithDamping (default 0.85), WithTolerance
// (default 1e-9 on the L∞ residual) and WithMaxIters.
func PageRank(edges []GraphEdge, opts ...Option) (*PageRankResult, error) {
	return PageRankContext(context.Background(), edges, opts...)
}

// PageRankContext is PageRank with cooperative cancellation.
func PageRankContext(ctx context.Context, edges []GraphEdge, opts ...Option) (res *PageRankResult, err error) {
	co, ip, err := buildIterOptions(opts, true)
	if err != nil {
		return nil, err
	}
	p := serversOf(co)
	ex, release, err := co.NewScope(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer mpc.Recover(&err)

	wedges := make([]spmv.Edge[int64], len(edges))
	for i, e := range edges {
		wedges[i] = spmv.Edge[int64]{Src: e.Src, Dst: e.Dst, W: e.W}
	}
	pr := spmv.PageRank(ex, wedges, p, co.Seed, ip.damping, ip.tol, ip.maxIters)
	res = &PageRankResult{
		Iterations: pr.Iters,
		Stats:      mpc.Seq(pr.Build, pr.Stats),
		Converged:  pr.Converged,
		Vertices:   pr.N,
		Edges:      pr.NNZ,
	}
	res.Ranks = make([]RankRow, len(pr.Ranks))
	for i, en := range pr.Ranks {
		res.Ranks[i] = RankRow{Vertex: en.Idx, Rank: en.Val}
	}
	finishRun(co, &res.Trace, &res.Faults)
	return res, nil
}

// serversOf resolves the cluster size with Execute's default.
func serversOf(co core.Options) int {
	if co.Servers == 0 {
		return 16
	}
	return co.Servers
}

// finishRun attaches the trace and fault accounting the options recorded.
func finishRun(co core.Options, trace *[]RoundTrace, faults **FaultReport) {
	if co.Tracer != nil {
		*trace = co.Tracer.Rounds()
	}
	if co.Faults != nil {
		rep := co.Faults.Report()
		*faults = &rep
	}
}

// Compile-time check: the drivers' semirings keep implementing the
// equality the fixpoint machinery relies on.
var _ semiring.Eq[int64] = semiring.MinPlus{}
