GO ?= go

.PHONY: ci vet build test race bench bench-smoke service-smoke service-bench cluster-smoke graph-smoke boundcheck planner-check chaos chaos-tcp bench-transport

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Run every package that spawns goroutines under the race detector: the
# worker-pool runtime, the mpc primitives it drives, the engine dispatch
# (concurrent executions + cancellation), and the query service.
race:
	$(GO) test -race ./internal/runtime/... ./internal/mpc/... ./internal/core/... ./internal/server/... ./internal/spmv/...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

# One iteration of every benchmark in the repo with allocation counts —
# cheap enough for CI, and enough to catch an allocation regression in
# the exchange/sort kernels (compare against BENCH_kernels.json).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x -benchmem ./... | tee bench-smoke.txt
	$(GO) test -run NONE -bench 'Kernel|RadixVsSortFunc' -benchtime 20x -benchmem ./internal/mpc/ | tee -a bench-smoke.txt

# End-to-end lane for the mpcd daemon: the test builds the binary with
# -race, boots it on an ephemeral port, registers a dataset, queries it
# under every strategy, round-trips a cache hit, floods a tenant past its
# admission quota, scrapes /metrics, SIGTERM-drains it, and checks the
# JSON access log.
service-smoke:
	$(GO) test -run TestServiceSmoke -count=1 -v ./cmd/mpcd

# Serving-plane benchmark lane: closed-loop load against an in-process
# mpcd over real HTTP — cold/warm cache, registration churn, and a
# two-tenant flood (see internal/servicebench). -quick keeps it CI-sized;
# BENCH_service.json carries the per-scenario report for upload.
service-bench:
	$(GO) run ./cmd/mpcbench -service -quick -json BENCH_service.json

# Iterated graph-analytics lane: generate a power-law graph through the
# datagen CLI (exercising the graph generator end to end), then run the
# GRAPH-iterload sweep — BFS/SSSP/PageRank driver loops whose every
# iteration's max-load is checked against the Table 1 matmul formula and
# whose outputs are verified against sequential references. The JSON rows
# land in BENCH_graph.json for CI to upload.
graph-smoke:
	$(GO) run ./cmd/datagen -kind graph -n 2000 -degree 8 -s 1.2 -out /tmp/mpcjoin-graph
	$(GO) run ./cmd/mpcbench -graph -quick -json BENCH_graph.json

# Multi-process cluster lane: the test builds mpcd with -race, boots two
# shuffle peers plus a coordinator and an in-process golden daemon on
# ephemeral ports, runs one query per strategy with exchange rounds over
# real TCP asserting bit-identical rows and Stats against the golden,
# absorbs a dropped-frame fault schedule over the wire, and SIGTERM-drains
# all four processes.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 -v ./cmd/mpcd

# Table 1 load-bound regression lane: run every query class across
# p ∈ {4,16,64} and assert measured MaxLoad stays within a constant factor
# of its Table 1 formula; BOUND_trace.json carries each run's per-round
# load timeline for CI to upload next to the bench artifacts.
boundcheck:
	$(GO) run ./cmd/boundcheck -quick -trace -json BOUND_trace.json

# Cost-based planner regression lane: per query class and cluster size,
# StrategyAuto runs once and every legal candidate engine runs forced;
# auto's measured MaxLoad must stay within 1.1× of the best candidate and
# its Stats must be bit-identical to its chosen engine forced directly.
# PLAN_report.json carries each instance's ranked candidates with their
# predicted and measured loads for CI to upload.
planner-check:
	$(GO) run ./cmd/boundcheck -planner -quick -json PLAN_report.json

# Fault-resilience lane: every engine under every fault schedule, run
# under the race detector (retry recovery is the one path that re-enters
# the barrier concurrently). Exits non-zero unless each cell is either
# absorbed bit-identically or fails with the typed budget error;
# CHAOS_report.json carries the per-(engine, scenario) accounting for CI
# to upload as an artifact.
chaos:
	$(GO) run -race ./cmd/chaos -quick -workers 4 -json CHAOS_report.json

# Chaos over the wire: the same sweep with every faulted run's exchange
# rounds carried over TCP through loopback shuffle peers while baselines
# stay in-process — drops become elided frames and crashes discarded
# peer-side inboxes, and absorption must still be bit-identical.
chaos-tcp:
	$(GO) run -race ./cmd/chaos -quick -workers 4 -transport tcp -json CHAOS_tcp_report.json

# Benchmark lane over the TCP backend: every experiment's benched run
# exchanges through loopback peers while verification baselines stay
# in-process, so each "verified" column is a cross-transport check.
bench-transport:
	$(GO) run ./cmd/mpcbench -experiment all -quick -transport tcp -json BENCH_transport.json
