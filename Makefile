GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent runtime and the mpc primitives it drives are the only
# packages that spawn goroutines; run them under the race detector.
race:
	$(GO) test -race ./internal/runtime/... ./internal/mpc/...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .
