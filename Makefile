GO ?= go

.PHONY: ci vet build test race bench bench-smoke service-smoke

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Run every package that spawns goroutines under the race detector: the
# worker-pool runtime, the mpc primitives it drives, the engine dispatch
# (concurrent executions + cancellation), and the query service.
race:
	$(GO) test -race ./internal/runtime/... ./internal/mpc/... ./internal/core/... ./internal/server/...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

# One iteration of every benchmark in the repo with allocation counts —
# cheap enough for CI, and enough to catch an allocation regression in
# the exchange/sort kernels (compare against BENCH_kernels.json).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x -benchmem ./... | tee bench-smoke.txt

# End-to-end lane for the mpcd daemon: the test builds the binary with
# -race, boots it on an ephemeral port, registers a dataset, queries it
# under every strategy, scrapes /metrics, and SIGTERM-drains it.
service-smoke:
	$(GO) test -run TestServiceSmoke -count=1 -v ./cmd/mpcd
