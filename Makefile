GO ?= go

.PHONY: ci vet build test race bench bench-smoke

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent runtime and the mpc primitives it drives are the only
# packages that spawn goroutines; run them under the race detector.
race:
	$(GO) test -race ./internal/runtime/... ./internal/mpc/...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

# One iteration of every benchmark in the repo with allocation counts —
# cheap enough for CI, and enough to catch an allocation regression in
# the exchange/sort kernels (compare against BENCH_kernels.json).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x -benchmem ./... | tee bench-smoke.txt
