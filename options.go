package mpcjoin

// options.go is the single home of Execute's functional options: every
// With* constructor, the combination rules between them, and the
// validation that turns a conflicting combination into an error instead
// of silently letting the last option win.
//
// Combination rules:
//
//   - Options are order-independent. Each With* records intent on an
//     internal builder; nothing is resolved until Execute, so
//     WithEstimator before or after WithSeed produces the same estimator
//     seed, and WithRetry before or after WithFaults produces the same
//     retry budget.
//   - Repeating the same option overwrites its earlier value (last call
//     wins within one option).
//   - Engine selection is exclusive: WithEngine, WithBaseline and
//     WithTreeEngine pairwise conflict (ErrOptionConflict). WithEngine is
//     the current spelling; the other two are deprecated wrappers.
//   - WithOutOracle feeds the cost-based planner and the specialized
//     matmul/line engines, and conflicts with the Yannakakis baseline,
//     which cannot consume it.
//   - WithRetry tunes the fault plane and requires WithFaults.
//   - Out-of-domain arguments (WithServers(p < 1), an invalid FaultSpec)
//     fail Execute with a descriptive error rather than being clamped.
//
// All violations surface at Execute as errors wrapping ErrOptionConflict
// (conflicting pairs) or plain validation errors (bad arguments); the
// query is never run on a half-understood configuration.

import (
	"errors"
	"fmt"

	"mpcjoin/internal/core"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/transport"
)

// ErrOptionConflict is wrapped by the error Execute returns when two
// options contradict each other (for example WithBaseline together with
// WithTreeEngine). Test with errors.Is.
var ErrOptionConflict = errors.New("mpcjoin: conflicting options")

// ErrFaultBudgetExceeded is wrapped by the error Execute returns when a
// fault-injected execution (WithFaults) had a round that stayed faulty
// past its retry budget. Test with errors.Is; errors.As against
// *FaultBudgetError exposes the round, primitive and fault kind.
var ErrFaultBudgetExceeded = mpc.ErrFaultBudgetExceeded

// FaultBudgetError details a fault-injected round that could not be
// recovered within its retry budget.
type FaultBudgetError = mpc.FaultBudgetError

// FaultSpec configures deterministic fault injection for WithFaults; the
// zero value injects nothing. See the field docs in internal/mpc.
type FaultSpec = mpc.FaultSpec

// FaultReport is the injection/detection/retry accounting of a
// fault-injected execution; read it from Result.Faults.
type FaultReport = mpc.FaultReport

// FaultEvent is one injected fault in FaultReport.Events.
type FaultEvent = mpc.FaultEvent

// Option configures Execute. Options are declarative and
// order-independent; conflicting combinations fail Execute with an error
// wrapping ErrOptionConflict (see the combination rules at the top of
// options.go).
type Option func(*optionSet)

// optionSet is the internal builder the With* constructors write to.
// It records which option supplied each exclusive setting, so build can
// name both sides of a conflict, and defers every cross-option
// derivation (estimator seed, fault retry budget) to build time for
// order independence.
type optionSet struct {
	core core.Options

	strategyBy string // option name that selected core.Strategy
	oracleBy   string // option name that set OutOracle

	est    *estimate.Params // Seed filled at build
	faults *mpc.FaultSpec
	retry  *int

	// Iterated-driver knobs, consumed by the graph entry points
	// (BFS/SSSP/PageRank); plain Execute rejects them.
	maxIters *int
	tol      *float64
	damping  *float64

	errs []error
}

func (o *optionSet) fail(err error) { o.errs = append(o.errs, err) }

func (o *optionSet) setStrategy(by string, s core.Strategy) {
	if o.strategyBy != "" && o.strategyBy != by {
		o.fail(fmt.Errorf("%w: %s and %s both select the engine", ErrOptionConflict, o.strategyBy, by))
		return
	}
	o.strategyBy = by
	o.core.Strategy = s
}

// build resolves the recorded options into a core.Options, applying the
// combination rules and returning the first violation.
func (o *optionSet) build() (core.Options, error) {
	if o.maxIters != nil {
		o.fail(fmt.Errorf("%w: WithMaxIters applies to the iterated graph entry points (BFS/SSSP/PageRank), not Execute", ErrOptionConflict))
	}
	if o.tol != nil {
		o.fail(fmt.Errorf("%w: WithTolerance applies to PageRank, not Execute", ErrOptionConflict))
	}
	if o.damping != nil {
		o.fail(fmt.Errorf("%w: WithDamping applies to PageRank, not Execute", ErrOptionConflict))
	}
	return o.buildCore()
}

// buildCore is build without the iterated-option rejection — the shared
// tail the graph entry points use after consuming those options.
func (o *optionSet) buildCore() (core.Options, error) {
	if o.core.Strategy == core.StrategyYannakakis && o.strategyBy != "" && o.oracleBy != "" {
		o.fail(fmt.Errorf("%w: %s requires the matmul/line engines, which %s disables", ErrOptionConflict, o.oracleBy, o.strategyBy))
	}
	if o.retry != nil && o.faults == nil {
		o.fail(fmt.Errorf("%w: WithRetry tunes the fault plane and requires WithFaults", ErrOptionConflict))
	}
	if o.est != nil {
		// Derived here, not at apply time, so the estimator seed is the
		// same whether WithEstimator comes before or after WithSeed.
		o.core.Est = estimate.Params{K: o.est.K, Reps: o.est.Reps, Seed: o.core.Seed + 0xabc}
	}
	if o.faults != nil {
		spec := *o.faults
		if spec.Seed == 0 {
			spec.Seed = o.core.Seed + 1 // plane must be seeded; derive from the run seed
		}
		if o.retry != nil {
			spec.MaxRetries = *o.retry
		}
		if err := spec.Validate(); err != nil {
			o.fail(fmt.Errorf("mpcjoin: WithFaults: %w", err))
		} else {
			o.core.Faults = mpc.NewFaultPlane(spec)
		}
	}
	if len(o.errs) > 0 {
		return core.Options{}, errors.Join(o.errs...)
	}
	return o.core, nil
}

// buildOptions applies opts to a fresh builder and resolves it.
func buildOptions(opts []Option) (core.Options, error) {
	var o optionSet
	for _, opt := range opts {
		opt(&o)
	}
	return o.build()
}

// iterParams is the resolved iterated-driver configuration of a graph
// entry point. Zero maxIters/tol select the kernel defaults.
type iterParams struct {
	maxIters int
	tol      float64
	damping  float64
}

// buildIterOptions resolves opts for a graph entry point: the iterated
// knobs land in iterParams (PageRank consumes all three; BFS/SSSP accept
// only WithMaxIters and reject the float-convergence knobs by name), and
// everything else resolves exactly as for Execute.
func buildIterOptions(opts []Option, pagerank bool) (core.Options, iterParams, error) {
	var o optionSet
	for _, opt := range opts {
		opt(&o)
	}
	ip := iterParams{damping: 0.85}
	if o.maxIters != nil {
		ip.maxIters = *o.maxIters
	}
	if pagerank {
		if o.tol != nil {
			ip.tol = *o.tol
		}
		if o.damping != nil {
			ip.damping = *o.damping
		}
	} else {
		if o.tol != nil {
			o.fail(fmt.Errorf("%w: WithTolerance applies to PageRank's float convergence, not BFS/SSSP", ErrOptionConflict))
		}
		if o.damping != nil {
			o.fail(fmt.Errorf("%w: WithDamping applies to PageRank, not BFS/SSSP", ErrOptionConflict))
		}
	}
	o.maxIters, o.tol, o.damping = nil, nil, nil
	co, err := o.buildCore()
	return co, ip, err
}

// WithServers sets the simulated cluster size p (default 16). p must be
// at least 1.
func WithServers(p int) Option {
	return func(o *optionSet) {
		if p < 1 {
			o.fail(fmt.Errorf("mpcjoin: WithServers(%d): cluster size must be at least 1", p))
			return
		}
		o.core.Servers = p
	}
}

// Engine names an execution engine for WithEngine. The zero value is
// EngineAuto.
type Engine string

const (
	// EngineAuto lets the cost-based planner pick the min-predicted-load
	// engine per instance (the default; see Result.Plan for the decision).
	EngineAuto Engine = "auto"
	// EngineYannakakis forces the distributed Yannakakis baseline —
	// Table 1's comparison column.
	EngineYannakakis Engine = "yannakakis"
	// EngineTree forces the general §7 tree engine regardless of class
	// (it subsumes all the specialized classes via its twig dispatch).
	EngineTree Engine = "tree"
)

// WithEngine selects the execution engine: EngineAuto (the cost-based
// planner, the default), EngineYannakakis, or EngineTree. It supersedes
// WithBaseline and WithTreeEngine and conflicts with both
// (ErrOptionConflict), so a caller migrating cannot silently mix the two
// spellings. Forcing EngineYannakakis conflicts with WithOutOracle.
func WithEngine(e Engine) Option {
	return func(o *optionSet) {
		switch e {
		case EngineAuto, "":
			o.setStrategy("WithEngine", core.StrategyAuto)
		case EngineYannakakis:
			o.setStrategy("WithEngine", core.StrategyYannakakis)
		case EngineTree:
			o.setStrategy("WithEngine", core.StrategyTree)
		default:
			o.fail(fmt.Errorf("mpcjoin: WithEngine(%q): unknown engine (want %q, %q or %q)", e, EngineAuto, EngineYannakakis, EngineTree))
		}
	}
}

// WithBaseline forces the distributed Yannakakis baseline. Conflicts
// with WithTreeEngine and WithEngine (all select the engine) and with
// WithOutOracle (the baseline has no use for an output-size oracle).
//
// Deprecated: use WithEngine(EngineYannakakis).
func WithBaseline() Option {
	return func(o *optionSet) { o.setStrategy("WithBaseline", core.StrategyYannakakis) }
}

// WithTreeEngine forces the general §7 tree engine. Conflicts with
// WithBaseline and WithEngine.
//
// Deprecated: use WithEngine(EngineTree).
func WithTreeEngine() Option {
	return func(o *optionSet) { o.setStrategy("WithTreeEngine", core.StrategyTree) }
}

// WithSeed fixes the randomness seed (hash partitioning, estimators);
// executions are fully reproducible for a given seed. Order relative to
// WithEstimator and WithFaults does not matter: derived seeds are
// resolved when Execute builds the configuration.
func WithSeed(seed uint64) Option {
	return func(o *optionSet) { o.core.Seed = seed }
}

// WithEstimator sets the §2.2 estimator's sketch size and repetition
// count; zero values keep the defaults.
func WithEstimator(k, reps int) Option {
	return func(o *optionSet) { o.est = &estimate.Params{K: k, Reps: reps} }
}

// WithOutOracle supplies the exact output size to the matmul and line
// engines instead of the §2.2 estimate (experiment support). Conflicts
// with WithBaseline.
func WithOutOracle(out int64) Option {
	return func(o *optionSet) {
		o.oracleBy = "WithOutOracle"
		o.core.OutOracle = out
	}
}

// WithWorkers runs the simulator's per-server work on n concurrent OS
// workers instead of serially; n <= 0 selects one worker per CPU
// (GOMAXPROCS). The choice affects wall-clock time only: results and
// metered Stats are bit-for-bit identical for every worker count, because
// per-server work is independent within a round and load accounting is
// aggregated after each round's barrier.
func WithWorkers(n int) Option {
	return func(o *optionSet) {
		if n <= 0 {
			n = -1 // core: negative means GOMAXPROCS
		}
		o.core.Workers = n
	}
}

// WithTrace records a per-round load timeline of the execution and
// returns it in Result.Trace. Tracing never changes results or Stats —
// a traced run is bit-identical to an untraced one — and costs nothing
// when off.
func WithTrace() Option {
	return func(o *optionSet) { o.core.Tracer = mpc.NewTracer() }
}

// WithFaults runs the execution under a deterministic fault plane: the
// spec's seeded schedule injects straggler delays, server crashes and
// message drops at the simulated exchange barriers, and each faulty
// round is detected and retried from its pre-round checkpoint. A run
// whose faults are absorbed by the retry budget returns Rows and Stats
// bit-identical to a fault-free run, plus the injection accounting in
// Result.Faults; a round faulty past its budget fails Execute with an
// error wrapping ErrFaultBudgetExceeded. A spec with Seed 0 derives its
// schedule seed from WithSeed.
func WithFaults(spec FaultSpec) Option {
	return func(o *optionSet) { s := spec; o.faults = &s }
}

// WithRetry bounds the per-round retry budget of the fault plane: max
// retries per faulty round (0 keeps the plane's default, negative
// disables retry so the first detected fault fails the run). Requires
// WithFaults; overrides the spec's MaxRetries field.
func WithRetry(max int) Option {
	return func(o *optionSet) { m := max; o.retry = &m }
}

// WithMaxIters bounds the iterated graph drivers' round budget (BFS,
// SSSP, PageRank): at most n multiply-and-step iterations, after which
// the result reports Converged=false with the state reached — budget
// exhaustion is an answer, not an error. n must be at least 1; the
// default budgets are per-driver (BFS/PageRank use a fixed cap, SSSP
// uses the Bellman-Ford |V|+1 guarantee). Conflicts with Execute, which
// runs no iterated driver.
func WithMaxIters(n int) Option {
	return func(o *optionSet) {
		if n < 1 {
			o.fail(fmt.Errorf("mpcjoin: WithMaxIters(%d): budget must be at least 1", n))
			return
		}
		m := n
		o.maxIters = &m
	}
}

// WithTolerance sets PageRank's convergence threshold: the loop stops
// when the L∞ residual between successive rank vectors drops to tol
// (default 1e-9). tol must be positive. Conflicts with Execute and with
// the exact-fixpoint drivers (BFS, SSSP).
func WithTolerance(tol float64) Option {
	return func(o *optionSet) {
		if tol <= 0 {
			o.fail(fmt.Errorf("mpcjoin: WithTolerance(%v): tolerance must be positive", tol))
			return
		}
		t := tol
		o.tol = &t
	}
}

// WithDamping sets PageRank's damping factor (default 0.85), the
// probability of following an edge rather than teleporting. Must lie
// strictly inside (0, 1). Conflicts with Execute, BFS and SSSP.
func WithDamping(d float64) Option {
	return func(o *optionSet) {
		if d <= 0 || d >= 1 {
			o.fail(fmt.Errorf("mpcjoin: WithDamping(%v): damping must lie in (0, 1)", d))
			return
		}
		v := d
		o.damping = &v
	}
}

// ExchangeTransport selects the backend an execution's exchange barriers
// run on; construct one with InProcTransport or TCPTransport and pass it
// to WithTransport. The zero value selects the in-process backend.
type ExchangeTransport struct {
	t transport.Transport
}

// Name reports the backend ("inproc", "tcp").
func (t ExchangeTransport) Name() string {
	if t.t == nil {
		return "inproc"
	}
	return t.t.Name()
}

// InProcTransport returns the in-process exchange backend — the default:
// rounds assemble inboxes inline with zero transport overhead.
func InProcTransport() ExchangeTransport { return ExchangeTransport{} }

// TCPTransport returns the TCP exchange backend over the given shuffle
// peer addresses (host:port of mpcd processes started with -peer). Every
// exchange round of the execution ships its outbox frames to the peers,
// which assemble the per-destination inboxes and stream them back; the
// address order fixes destination ownership, so all coordinators of a
// cluster must pass the same list. Results, Stats, traces and fault
// reports are bit-for-bit identical to the in-process backend.
func TCPTransport(peers ...string) ExchangeTransport {
	return ExchangeTransport{t: transport.TCP(peers...)}
}

// WithTransport runs the execution's exchange barriers on the given
// backend. The default (and InProcTransport) is the in-process path;
// TCPTransport delegates every round to a cluster of shuffle peers over
// real sockets. The choice never changes results or metered Stats, only
// where the bytes of each round physically travel.
func WithTransport(t ExchangeTransport) Option {
	return func(o *optionSet) {
		if t.t == nil {
			o.core.Transport = nil
			return
		}
		o.core.Transport = t.t
	}
}
